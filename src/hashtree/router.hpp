#pragma once

#include <cstdint>
#include <vector>

#include "hashtree/tree.hpp"
#include "util/flat_map.hpp"

namespace agentloc::hashtree {

/// Compiled read path for the hash function (DESIGN.md §9), kept fresh across
/// mutations by in-place patching (DESIGN.md §11).
///
/// The pointer-based `HashTree` is the right shape for rehashing — splits and
/// merges are local splices — but a poor shape for the read path: every
/// location query chases `unique_ptr`s scattered across the heap and consults
/// heap-backed `BitString` labels. `CompiledRouter` flattens the tree into a
/// contiguous array of fixed-size entries laid out in preorder (so a
/// root→leaf walk moves forward through cache-resident memory):
///
///  * internal entries carry the *absolute id-bit position* their children
///    discriminate on (label skip widths are pre-summed into it at compile
///    time) and the two child entry indices;
///  * leaf entries carry the `{iagent, location}` payload.
///
/// `route_id` is the allocation-free fast path: a 64-bit id is routed with a
/// branch-light loop of word shifts — no `BitString` is ever materialized.
///
/// Staleness: the router is keyed on `HashTree::version()`. A full `rebuild`
/// is only the cold path (first lookup, deserialized/copied trees,
/// fragmentation-triggered compaction). While the router is fresh, every
/// tree mutation *patches* it in place and advances `compiled_version_` in
/// lockstep — `kSetLocation` rewrites one leaf payload, splits splice 1–2
/// entries into free slots, merges splice children up and push the freed
/// slots onto a free list — so rehash storms cost O(path) per mutation
/// instead of one O(tree) rebuild each (see DESIGN.md §11 for why
/// op-lockstep versioning is safe).
class CompiledRouter {
 public:
  /// Sentinel child index marking a leaf entry; doubles as the "no parent"
  /// marker on the root entry.
  static constexpr std::uint32_t kLeafSentinel = 0xffffffffu;

  struct Entry {
    std::uint32_t bit_pos = 0;  ///< id bit consulted here (internal entries)
    std::uint32_t child[2] = {kLeafSentinel, kLeafSentinel};
    std::uint32_t parent = kLeafSentinel;  ///< entry index; sentinel at root
    NodeLocation location = 0;      ///< leaf payload
    IAgentId iagent = kNoIAgent;    ///< leaf payload; kNoIAgent when internal
  };

  /// True when the router routes for this tree's current version. False once
  /// fragmentation crossed the compaction threshold: the entries still route
  /// correctly, but the next `HashTree::router()` call recompiles compactly
  /// instead of patching on.
  bool fresh(const HashTree& tree) const noexcept {
    return !entries_.empty() && !wants_compaction_ &&
           compiled_version_ == tree.version();
  }

  /// Recompile from the tree (preorder flattening; clears previous state,
  /// including free-list fragmentation).
  void rebuild(const HashTree& tree);

  /// Route a 64-bit id. Allocation-free. Precondition: compiled.
  HashTree::Target route_id(std::uint64_t id) const noexcept;

  /// Route an id given as bits (ids shorter than the consumed path read as
  /// zero-extended, matching the node-walking lookup). Precondition:
  /// compiled.
  HashTree::Target route(const util::BitString& id_bits) const noexcept;

  /// --- In-place patching (the mutation-side mirror of the read path) ------
  /// Each patch applies one `TreeOp`'s structural effect directly to the
  /// entry array and advances `compiled_version_` to `new_version` (the tree
  /// version right after the mutation). `HashTree`'s mutators call these
  /// when the router was fresh at the pre-mutation version; otherwise the
  /// router simply stays stale and the next lookup recompiles.

  /// kSetLocation: rewrite one leaf payload. O(1).
  void patch_set_location(IAgentId leaf, NodeLocation location,
                          std::uint64_t new_version);

  /// Simple split of `victim` consulting absolute id bit `split_bit_pos`:
  /// the victim's leaf entry turns internal and two leaves splice into free
  /// slots. O(1).
  void patch_simple_split(IAgentId victim, std::uint32_t split_bit_pos,
                          IAgentId new_iagent, NodeLocation new_location,
                          std::uint64_t new_version);

  /// Complex split reclaiming the padding bit at absolute position
  /// `reclaimed_pos` (recorded value `reclaimed`) on the edge `steps_up`
  /// parent hops above `victim`'s leaf: a new internal entry splices into
  /// that edge with the relocated subtree on the `reclaimed` side and the
  /// new leaf on the complement. O(path).
  void patch_complex_split(IAgentId victim, std::uint32_t steps_up,
                           bool reclaimed, std::uint32_t reclaimed_pos,
                           IAgentId new_iagent, NodeLocation new_location,
                           std::uint64_t new_version);

  /// Merge of leaf `victim`: the sibling (leaf) or the sibling's children
  /// (internal sibling) splice into the parent entry; the freed slots go to
  /// the free list. Mirrors `HashTree::merge`'s simple/complex distinction
  /// from the router's own structure. O(1).
  void patch_merge(IAgentId victim, std::uint64_t new_version);

  std::uint64_t compiled_version() const noexcept { return compiled_version_; }

  /// Array length including free slots (`live_entries` + free list).
  std::size_t entry_count() const noexcept { return entries_.size(); }
  /// Entries currently reachable from the root: 2·leaves − 1.
  std::size_t live_entries() const noexcept {
    return entries_.size() - free_.size();
  }
  std::size_t free_slots() const noexcept { return free_.size(); }

  /// --- Introspection for tests and benches --------------------------------
  std::uint64_t rebuilds() const noexcept { return rebuilds_; }
  std::uint64_t patches() const noexcept { return patches_; }
  std::uint64_t compactions() const noexcept { return compactions_; }
  bool wants_compaction() const noexcept { return wants_compaction_; }

 private:
  std::uint32_t alloc_entry();
  void free_entry(std::uint32_t idx);
  std::uint32_t leaf_entry(IAgentId leaf) const;

  std::vector<Entry> entries_;
  std::uint32_t root_ = 0;  ///< entry index of the root (patches can move it)
  /// Leaf id → entry index: the anchor every patch starts from (ops name
  /// leaves, never internal entries — those are reached via `parent`).
  util::FlatMap<IAgentId, std::uint32_t, kNoIAgent> leaf_index_;
  /// Slots freed by merges, reused by splits (LIFO keeps churn compact).
  std::vector<std::uint32_t> free_;
  std::uint64_t compiled_version_ = 0;  ///< 0 = never compiled
  /// Set when the free list outgrows the live entries: routing still works,
  /// but `fresh()` reports stale so the next `router()` call compacts.
  bool wants_compaction_ = false;

  std::uint64_t rebuilds_ = 0;
  std::uint64_t patches_ = 0;
  std::uint64_t compactions_ = 0;
};

}  // namespace agentloc::hashtree
