#pragma once

#include <cstdint>
#include <vector>

#include "hashtree/tree.hpp"

namespace agentloc::hashtree {

/// Compiled read path for the hash function (DESIGN.md §9).
///
/// The pointer-based `HashTree` is the right shape for rehashing — splits and
/// merges are local splices — but a poor shape for the read path: every
/// location query chases `unique_ptr`s scattered across the heap and consults
/// heap-backed `BitString` labels. `CompiledRouter` flattens the tree into a
/// contiguous array of fixed-size entries laid out in preorder (so a root→leaf
/// walk moves forward through cache-resident memory):
///
///  * internal entries carry the *absolute id-bit position* their children
///    discriminate on (label skip widths are pre-summed into it at compile
///    time) and the two child entry indices;
///  * leaf entries carry the `{iagent, location}` payload.
///
/// `route_id` is the allocation-free fast path: a 64-bit id is routed with a
/// branch-light loop of word shifts — no `BitString` is ever materialized.
///
/// Staleness: the router is keyed on `HashTree::version()`, which every
/// mutation bumps. `HashTree::lookup`/`lookup_id` call `rebuild` lazily when
/// the compiled version no longer matches, so a rehash costs one O(n) rebuild
/// amortized over the read traffic that follows it (see DESIGN.md §9 for why
/// version-keyed invalidation is safe).
class CompiledRouter {
 public:
  /// Sentinel child index marking a leaf entry.
  static constexpr std::uint32_t kLeafSentinel = 0xffffffffu;

  struct Entry {
    std::uint32_t bit_pos = 0;  ///< id bit consulted here (internal entries)
    std::uint32_t child[2] = {kLeafSentinel, kLeafSentinel};
    NodeLocation location = 0;      ///< leaf payload
    IAgentId iagent = kNoIAgent;    ///< leaf payload; kNoIAgent when internal
  };

  /// True when the router was compiled from this tree's current version.
  bool fresh(const HashTree& tree) const noexcept {
    return !entries_.empty() && compiled_version_ == tree.version();
  }

  /// Recompile from the tree (preorder flattening; clears previous state).
  void rebuild(const HashTree& tree);

  /// Route a 64-bit id. Allocation-free. Precondition: compiled.
  HashTree::Target route_id(std::uint64_t id) const noexcept;

  /// Route an id given as bits (ids shorter than the consumed path read as
  /// zero-extended, matching the node-walking lookup). Precondition:
  /// compiled.
  HashTree::Target route(const util::BitString& id_bits) const noexcept;

  std::uint64_t compiled_version() const noexcept { return compiled_version_; }
  std::size_t entry_count() const noexcept { return entries_.size(); }

 private:
  std::vector<Entry> entries_;
  std::uint64_t compiled_version_ = 0;  ///< 0 = never compiled
};

}  // namespace agentloc::hashtree
