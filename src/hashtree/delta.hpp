#pragma once

#include <optional>
#include <vector>

#include "hashtree/tree.hpp"
#include "util/bytebuffer.hpp"

namespace agentloc::hashtree {

/// One replayable mutation of a hash tree. A sequence of `TreeOp`s starting
/// from a known version reproduces the primary copy exactly — the basis of
/// delta refresh, where the HAgent ships only the operations a secondary
/// copy is missing instead of a full snapshot.
struct TreeOp {
  enum class Kind : std::uint8_t {
    kSimpleSplit = 0,
    kComplexSplit = 1,
    kMerge = 2,
    kSetLocation = 3,
  };

  Kind kind = Kind::kSetLocation;

  /// Split/merge victim, or the leaf whose location changed.
  IAgentId victim = kNoIAgent;

  /// kSimpleSplit: the m parameter.
  std::uint32_t m = 1;

  /// kComplexSplit: the reclaimed padding bit.
  SplitPoint point;

  /// Splits: the new IAgent.
  IAgentId new_iagent = kNoIAgent;

  /// Splits: node of the new IAgent; kSetLocation: the new node.
  NodeLocation location = 0;

  friend bool operator==(const TreeOp&, const TreeOp&) = default;
};

/// Apply one op to a tree (throws exactly like the underlying mutation).
void apply_op(HashTree& tree, const TreeOp& op);

void serialize_op(util::ByteWriter& writer, const TreeOp& op);
TreeOp deserialize_op(util::ByteReader& reader);

/// Encoded width of `serialize_op(op)` in bytes, without writing it.
std::size_t serialized_op_bytes(const TreeOp& op);

/// A delta shipped from the primary copy: replay `ops` onto a tree at
/// `base_version` to reach `target_version`.
struct TreeDelta {
  std::uint64_t base_version = 0;
  std::uint64_t target_version = 0;
  std::vector<TreeOp> ops;

  void serialize(util::ByteWriter& writer) const;
  static TreeDelta deserialize(util::ByteReader& reader);

  /// Encoded width in bytes, computed analytically (no serialization) so
  /// the HAgent decides delta-vs-snapshot before encoding anything.
  std::size_t serialized_bytes() const;

  /// Replay onto `tree`; throws `std::logic_error` when the tree is not at
  /// `base_version` or the replay does not land on `target_version`.
  ///
  /// Single pass: the leaf index is pre-sized for the replay's net split
  /// count, and each op patches the tree's compiled router and leaf index
  /// fused with the structural change (no post-replay reindex or rebuild) —
  /// a warm LHAgent router survives the whole delta O(changed).
  void apply_to(HashTree& tree) const;
};

/// Bounded journal of the mutations applied to a primary copy, indexed by
/// the version each produced. The owner records every mutation it performs;
/// `since` then cuts deltas for stale secondary copies.
///
/// Bounded two ways: by op count (`capacity`) and by encoded size
/// (`max_bytes`, 0 = unbounded). Crossing either bound truncates the oldest
/// ops — refreshers older than the truncation point fall back to snapshots —
/// so a churn storm cannot grow the primary's memory without limit.
class TreeJournal {
 public:
  explicit TreeJournal(std::size_t capacity = 256, std::size_t max_bytes = 0)
      : capacity_(capacity), max_bytes_(max_bytes) {}

  /// Record an op that advanced the tree to `version_after`. Versions must
  /// arrive strictly increasing by 1 (each mutation bumps by one); gaps
  /// clear the journal (safe fallback to full snapshots).
  void record(std::uint64_t version_after, TreeOp op);

  /// Delta from `version` to the journal head; nullopt when the journal no
  /// longer reaches back that far (or `version` is ahead of the head).
  std::optional<TreeDelta> since(std::uint64_t version) const;

  std::size_t size() const noexcept { return ops_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }

  /// Encoded size of the retained ops (sum of `serialized_op_bytes`).
  std::size_t bytes() const noexcept { return bytes_; }
  /// Times the bounds forced oldest-op truncation (each event may drop
  /// several ops at once).
  std::uint64_t truncations() const noexcept { return truncations_; }

 private:
  std::size_t capacity_;
  std::size_t max_bytes_;
  std::size_t bytes_ = 0;           ///< encoded size of `ops_`
  std::uint64_t truncations_ = 0;
  std::uint64_t head_version_ = 0;  ///< version after the newest recorded op
  std::vector<TreeOp> ops_;         ///< oldest first
};

}  // namespace agentloc::hashtree
