#include "hashtree/paper_figures.hpp"

#include "util/bytebuffer.hpp"

namespace agentloc::hashtree {

std::string paper_name(IAgentId id) {
  return "IA" + std::to_string(id - 1);
}

namespace {

void write_internal(util::ByteWriter& w, const char* label) {
  w.write_u8(0);
  w.write_bits(util::BitString::parse(label));
}

void write_leaf(util::ByteWriter& w, const char* label, IAgentId id,
                NodeLocation location) {
  w.write_u8(1);
  w.write_bits(util::BitString::parse(label));
  w.write_varint(id);
  w.write_u32(location);
}

}  // namespace

HashTree figure1_tree() {
  // Built through the (validated) wire format: the multi-bit labels of
  // Figure 1 are remnants of merges that happened before the figure's
  // snapshot, so they cannot all be produced by splits from a fresh tree.
  util::ByteWriter w;
  w.write_u32(0x48545245);  // magic
  w.write_varint(1);        // version

  write_internal(w, "");  // root, no padding
  /**/ write_internal(w, "0");  // X
  /****/ write_internal(w, "011");  // Y
  /******/ write_leaf(w, "0", kIA2, 2);
  /******/ write_internal(w, "1");  // V
  /********/ write_leaf(w, "0", kIA0, 0);
  /********/ write_leaf(w, "1", kIA4, 4);
  /****/ write_leaf(w, "10", kIA1, 1);
  /**/ write_internal(w, "1");  // Z
  /****/ write_leaf(w, "0", kIA3, 3);
  /****/ write_internal(w, "1");  // W
  /******/ write_leaf(w, "0", kIA5, 5);
  /******/ write_leaf(w, "1", kIA6, 6);

  util::ByteReader reader(w.bytes());
  return HashTree::deserialize(reader);
}

}  // namespace agentloc::hashtree
