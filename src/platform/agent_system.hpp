#pragma once

#include <any>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/network.hpp"
#include "platform/agent.hpp"
#include "platform/message.hpp"
#include "sim/simulator.hpp"

namespace agentloc::platform {

/// Outcome of a `request` RPC.
struct RpcResult {
  enum class Status {
    kOk,               ///< `reply` holds the response.
    kTimeout,          ///< no response within the deadline
    kDeliveryFailure,  ///< destination node did not host the target agent
  };

  Status status = Status::kTimeout;
  Message reply;

  bool ok() const noexcept { return status == Status::kOk; }
};

/// Counters the benches report alongside location times.
struct PlatformStats {
  std::uint64_t agents_created = 0;
  std::uint64_t agents_disposed = 0;
  std::uint64_t migrations_started = 0;
  std::uint64_t migrations_completed = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_processed = 0;
  std::uint64_t messages_bounced = 0;
  std::uint64_t rpc_timeouts = 0;
};

/// The mobile-agent platform: hosts agents on simulated nodes, migrates them,
/// and delivers inter-agent messages.
///
/// This is the repository's stand-in for Aglets (see DESIGN.md §2). Three
/// properties matter to the reproduction:
///
/// 1. **Messaging is location-addressed.** A message goes to a (node, id)
///    address; if the agent is no longer there the platform bounces a
///    `DeliveryFailure` to the sender. Nothing in the platform tracks agents
///    globally — that is precisely the job of the location mechanism built
///    on top.
/// 2. **Processing costs CPU.** Each agent serves its inbox FIFO, one message
///    per `service_time`. An agent flooded with requests (the centralized
///    tracker at scale) accumulates queueing delay — the effect behind the
///    paper's Figure 7/8 curves.
/// 3. **Migration costs bandwidth and time.** Moving an agent ships its
///    serialized image through the same network, and the agent processes no
///    messages while in transit.
class AgentSystem {
 public:
  struct Config {
    /// CPU time an agent spends handling one message.
    sim::SimTime service_time = sim::SimTime::micros(400);

    /// Assign uniformly-mixed agent ids (see `AgentId` docs). Tests may
    /// disable this to get small sequential ids.
    bool mixed_ids = true;

    /// Bounce undeliverable messages back to their sender.
    bool bounce_undeliverable = true;

    /// Default RPC deadline when the caller does not pass one.
    sim::SimTime default_rpc_timeout = sim::SimTime::millis(250);

    /// Delay before re-sending a migration the fault plan swallowed
    /// (migration is modelled as reliable transport, e.g. TCP retries).
    sim::SimTime migration_retry = sim::SimTime::millis(5);
  };

  AgentSystem(sim::Simulator& simulator, net::Network& network);
  AgentSystem(sim::Simulator& simulator, net::Network& network,
              Config config);
  ~AgentSystem();
  AgentSystem(const AgentSystem&) = delete;
  AgentSystem& operator=(const AgentSystem&) = delete;

  sim::Simulator& simulator() noexcept { return simulator_; }
  net::Network& network() noexcept { return network_; }
  sim::SimTime now() const noexcept { return simulator_.now(); }
  std::size_t node_count() const noexcept { return network_.node_count(); }
  const Config& config() const noexcept { return config_; }
  const PlatformStats& stats() const noexcept { return stats_; }

  /// Create an agent of type `T` at `node`; `on_start` runs asynchronously
  /// (next simulator event). Returns a reference owned by the system; the
  /// reference stays valid until `dispose`.
  template <typename T, typename... Args>
  T& create(net::NodeId node, Args&&... args) {
    auto owned = std::make_unique<T>(std::forward<Args>(args)...);
    T& agent = *owned;
    install(std::move(owned), node);
    return agent;
  }

  /// Destroy an agent. Its queued messages bounce; pending RPCs it issued
  /// are dropped.
  void dispose(AgentId id);

  /// Start migrating an agent to `destination`. The agent disappears from
  /// its node immediately and reappears (triggering `on_arrival`) after the
  /// transfer latency. Throws when the agent is unknown or already in
  /// transit.
  void migrate(AgentId id, net::NodeId destination);

  /// Fire-and-forget message.
  void send(AgentId from, const AgentAddress& to, std::any body,
            std::size_t wire_bytes);

  /// Request/response. `callback` fires exactly once: with the reply, a
  /// bounce, or a timeout. Replies route to the callback, not to
  /// `on_message`.
  void request(AgentId from, const AgentAddress& to, std::any body,
               std::size_t wire_bytes,
               std::function<void(RpcResult)> callback,
               std::optional<sim::SimTime> timeout = std::nullopt);

  /// Respond to a request received in `on_message`.
  void reply(const Message& request, AgentId from, std::any body,
             std::size_t wire_bytes);

  /// --- Node-local service registry -------------------------------------
  /// Stationary per-node infrastructure (the paper's LHAgents) registers
  /// here so that newly created or arriving agents can find it without any
  /// remote communication.
  void register_service(net::NodeId node, const std::string& name,
                        AgentId agent);
  void unregister_service(net::NodeId node, const std::string& name);
  std::optional<AgentId> lookup_service(net::NodeId node,
                                        const std::string& name) const;

  /// --- Introspection (test oracle / benches; not used by protocols) -----
  bool exists(AgentId id) const noexcept;
  bool in_transit(AgentId id) const noexcept;

  /// Ground-truth node of an agent (nullopt while in transit or unknown).
  std::optional<net::NodeId> node_of(AgentId id) const noexcept;

  /// Agent pointer for white-box assertions; nullptr if disposed.
  Agent* find(AgentId id) noexcept;

  std::size_t live_agent_count() const noexcept { return records_.size(); }

  /// Number of messages waiting in an agent's inbox (including the one in
  /// service).
  std::size_t inbox_depth(AgentId id) const noexcept;

 private:
  enum class State { kActive, kInTransit };

  struct Record {
    std::unique_ptr<Agent> agent;
    State state = State::kActive;
    std::deque<Message> inbox;
    bool serving = false;
    /// Bumped on migrate/dispose so stale scheduled events become no-ops.
    std::uint64_t epoch = 0;
  };

  struct PendingRpc {
    AgentId from = kNoAgent;
    std::function<void(RpcResult)> callback;
    sim::EventId timeout_event = sim::kInvalidEvent;
  };

  void install(std::unique_ptr<Agent> owned, net::NodeId node);
  AgentId allocate_id();

  void ship_migration(AgentId id, std::uint64_t epoch, net::NodeId source,
                      net::NodeId destination, std::size_t bytes);
  void transmit(Message message, net::NodeId to_node);
  void deliver(net::NodeId node, Message message);
  void enqueue(Record& record, Message message);
  void serve_next(AgentId id, std::uint64_t epoch);
  void dispatch(Agent& agent, const Message& message);
  void bounce(const Message& message);
  void complete_rpc(std::uint64_t correlation, RpcResult result);
  void drop_rpcs_from(AgentId id);

  sim::Simulator& simulator_;
  net::Network& network_;
  Config config_;
  PlatformStats stats_;

  std::uint64_t id_counter_ = 0;
  std::uint64_t correlation_counter_ = 0;

  std::unordered_map<AgentId, Record> records_;
  std::unordered_map<std::uint64_t, PendingRpc> pending_rpcs_;
  std::vector<std::map<std::string, AgentId>> services_;

  /// Agents disposed from inside their own callbacks wait here until the
  /// current event finishes.
  std::vector<std::unique_ptr<Agent>> graveyard_;
  bool graveyard_sweep_scheduled_ = false;
};

}  // namespace agentloc::platform
