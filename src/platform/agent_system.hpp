#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "net/network.hpp"
#include "net/transport.hpp"
#include "platform/agent.hpp"
#include "platform/message.hpp"
#include "sim/simulator.hpp"
#include "util/flat_map.hpp"
#include "util/inline_function.hpp"
#include "util/ring_buffer.hpp"

namespace agentloc::platform {

class ShardHost;

/// Outcome of a `request` RPC.
struct RpcResult {
  enum class Status {
    kOk,               ///< `reply` holds the response.
    kTimeout,          ///< no response within the deadline
    kDeliveryFailure,  ///< destination node did not host the target agent
  };

  Status status = Status::kTimeout;
  Message reply;

  bool ok() const noexcept { return status == Status::kOk; }
};

/// RPC completion callback. Location-protocol callbacks capture a handful of
/// ids plus a continuation (~56 bytes), so 64 inline bytes keeps the request
/// path allocation-free where `std::function` spilled every capture.
using RpcCallback = util::InlineFunction<void(RpcResult), 64>;

/// Itemized estimate of the platform's resident heap bytes, by subsystem.
/// Feeds `PlatformStats::bytes_per_agent` and the `bench_scale` memory
/// curves; each component counts *capacity* (what is allocated), not
/// momentary occupancy, because pooled capacity is what the process holds at
/// steady state.
struct MemoryBreakdown {
  /// Agent record storage: hot slot array, cold agent-pointer array, the
  /// free-slot list, and the id → slot index table.
  std::size_t agent_records = 0;
  /// Live and pooled inbox ring slabs.
  std::size_t inboxes = 0;
  /// Pending-RPC table slots.
  std::size_t rpc_table = 0;
  /// In-flight message slot pool.
  std::size_t in_flight = 0;
  /// Per-node service registry vectors.
  std::size_t services = 0;

  std::size_t total() const noexcept {
    return agent_records + inboxes + rpc_table + in_flight + services;
  }
};

/// Counters the benches report alongside location times.
struct PlatformStats {
  std::uint64_t agents_created = 0;
  std::uint64_t agents_disposed = 0;
  std::uint64_t migrations_started = 0;
  std::uint64_t migrations_completed = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_processed = 0;
  std::uint64_t messages_bounced = 0;
  std::uint64_t rpc_timeouts = 0;
  /// RPCs completed with `kDeliveryFailure` (bounced request, or the caller
  /// was disposed with the RPC still pending).
  std::uint64_t rpc_delivery_failures = 0;
  /// `BatchedUpdate` flushes performed by the core layer's update batchers.
  std::uint64_t batch_flushes = 0;
  /// Location updates that rode an existing batch instead of paying for a
  /// wire message of their own (`enqueued - flushed batches`).
  std::uint64_t messages_coalesced = 0;
  /// High-water mark of any single agent inbox (including the message in
  /// service) — the queueing-pressure analogue of the paper's saturation
  /// curves, and the platform's dominant per-agent memory term.
  std::size_t peak_inbox_depth = 0;
  /// Estimated resident platform bytes per live agent at collection time
  /// (`AgentSystem::estimated_resident_bytes / live_agent_count`), filled by
  /// the experiment harness; 0 while a run is in flight.
  double bytes_per_agent = 0.0;
  /// High-water mark of `AgentSystem::estimated_resident_bytes`, sampled at
  /// every allocation growth point (agent install, inbox growth, in-flight
  /// pool growth). Deterministic for a fixed seed, so it gates in CI the way
  /// throughput does (lower is better).
  std::size_t peak_resident_bytes = 0;
  /// Per-subsystem byte attribution behind `bytes_per_agent`, filled by the
  /// experiment harness at collection time.
  MemoryBreakdown memory;
};

/// The mobile-agent platform: hosts agents on simulated nodes, migrates them,
/// and delivers inter-agent messages.
///
/// This is the repository's stand-in for Aglets (see DESIGN.md §2). Three
/// properties matter to the reproduction:
///
/// 1. **Messaging is location-addressed.** A message goes to a (node, id)
///    address; if the agent is no longer there the platform bounces a
///    `DeliveryFailure` to the sender. Nothing in the platform tracks agents
///    globally — that is precisely the job of the location mechanism built
///    on top.
/// 2. **Processing costs CPU.** Each agent serves its inbox FIFO, one message
///    per `service_time`. An agent flooded with requests (the centralized
///    tracker at scale) accumulates queueing delay — the effect behind the
///    paper's Figure 7/8 curves.
/// 3. **Migration costs bandwidth and time.** Moving an agent ships its
///    serialized image through the same network, and the agent processes no
///    messages while in transit.
///
/// The message plane is allocation-free in steady state (DESIGN.md §10):
/// payloads live inline in `util::PayloadBox`, inboxes are pooled
/// `util::RingBuffer`s recycled across agent lifetimes, and in-flight
/// messages wait in a slot pool so delivery events capture 16 trivially-
/// copyable bytes.
///
/// Agent records live in generation-tagged slab storage (DESIGN.md §15): a
/// dense array of hot `Slot`s (id, node mirror, generation, lifecycle flags,
/// inbox ring header) parallel to a cold array of owning agent pointers,
/// indexed by an open-addressing id → slot `util::FlatMap`. Scheduled events
/// capture `{slot, generation}` — validity is one array probe, slots are
/// recycled through a free list, and erasing an agent never moves another
/// agent's record.
class AgentSystem {
 public:
  struct Config {
    /// CPU time an agent spends handling one message.
    sim::SimTime service_time = sim::SimTime::micros(400);

    /// Assign uniformly-mixed agent ids (see `AgentId` docs). Tests may
    /// disable this to get small sequential ids.
    bool mixed_ids = true;

    /// Bounce undeliverable messages back to their sender.
    bool bounce_undeliverable = true;

    /// Default RPC deadline when the caller does not pass one.
    sim::SimTime default_rpc_timeout = sim::SimTime::millis(250);

    /// Delay before re-sending a migration the fault plan swallowed
    /// (migration is modelled as reliable transport, e.g. TCP retries).
    sim::SimTime migration_retry = sim::SimTime::millis(5);

    /// Pre-size the record slab and id index for this many agents (0 = grow
    /// on demand). Million-agent runs set this so the install storm never
    /// rehashes the index or reallocates the slab mid-run.
    std::size_t reserve_agents = 0;

    /// Sharded-deployment id partitioning (DESIGN.md §16): ids derive from
    /// the sequence `counter * id_stride + id_salt`, so systems configured
    /// with a common stride (the shard count) and distinct salts (the shard
    /// index) mint globally unique ids with no coordination — and an id
    /// minted on one shard can be installed on another. The defaults
    /// reproduce the unsharded sequence exactly.
    std::uint64_t id_stride = 1;
    std::uint64_t id_salt = 0;
  };

  AgentSystem(sim::Simulator& simulator, net::Network& network);
  AgentSystem(sim::Simulator& simulator, net::Network& network,
              Config config);
  ~AgentSystem();
  AgentSystem(const AgentSystem&) = delete;
  AgentSystem& operator=(const AgentSystem&) = delete;

  sim::Simulator& simulator() noexcept { return simulator_; }
  net::Network& network() noexcept { return network_; }

  /// --- Message-plane transport seam (DESIGN.md §17) ---------------------
  /// Every transmission the platform makes — messages, bounces, migrations —
  /// samples faults/latency and counts deliveries through this seam. The
  /// default backend is a `net::SimTransport` over `network()`, which is
  /// bit-identical to calling the network directly (fixed-seed
  /// test-enforced). Tests and tracing shims may install a decorator; the
  /// replacement must report the same `node_count()` and must be swapped in
  /// before any traffic flows.
  net::Transport& transport() noexcept { return *transport_; }
  void set_transport(net::Transport& transport) noexcept {
    transport_ = &transport;
  }
  sim::SimTime now() const noexcept { return simulator_.now(); }
  std::size_t node_count() const noexcept { return network_.node_count(); }
  const Config& config() const noexcept { return config_; }
  const PlatformStats& stats() const noexcept { return stats_; }

  /// --- Sharded deployment (DESIGN.md §16) --------------------------------
  /// Attach this system to a sharded deployment as shard `shard`: transmits
  /// and migrations whose destination node another shard owns are handed to
  /// `host` as cross-LP envelopes instead of being scheduled locally. The
  /// host must outlive the system. Unattached (the default), behaviour is
  /// bit-identical to the pre-sharding platform.
  void attach_shard_host(ShardHost& host, std::uint32_t shard) noexcept {
    host_ = &host;
    shard_index_ = shard;
  }

  bool sharded() const noexcept { return host_ != nullptr; }
  std::uint32_t shard_index() const noexcept { return shard_index_; }

  /// Mint a fresh agent id from this shard's stride/salt partition without
  /// installing anything — for agents this shard creates on another shard
  /// (the id is available synchronously; the install ships as an envelope).
  AgentId mint_id() { return allocate_id(); }

  /// Install an agent under a pre-minted id (from any shard's `mint_id`) and
  /// schedule `on_start`, exactly like `create` — the destination half of a
  /// cross-shard spawn. Throws if the id is already installed here.
  void install_spawned(std::unique_ptr<Agent> owned, AgentId id,
                       net::NodeId node);

  /// Destination half of a cross-shard migration: install the shipped agent
  /// under its preserved id, count the migration as completed, and run
  /// `on_shard_transfer` (no `on_start` — the agent already ran it on its
  /// birth shard). The host completes the handoff with `notify_arrival`
  /// after rebinding scheme-side state.
  void adopt_migrated(std::unique_ptr<Agent> owned, AgentId id,
                      net::NodeId node);

  /// Final step of a cross-shard migration handoff: run `on_arrival`.
  void notify_arrival(AgentId id, net::NodeId from_node);

  /// Deliver a message that arrived from another shard (counts the delivery
  /// on this shard's network, then follows the normal local delivery path —
  /// including the bounce-to-sender rule for absent targets).
  void deliver_remote(net::NodeId node, Message message);

  /// Create an agent of type `T` at `node`; `on_start` runs asynchronously
  /// (next simulator event). Returns a reference owned by the system; the
  /// reference stays valid until `dispose`.
  template <typename T, typename... Args>
  T& create(net::NodeId node, Args&&... args) {
    auto owned = std::make_unique<T>(std::forward<Args>(args)...);
    T& agent = *owned;
    install(std::move(owned), node);
    return agent;
  }

  /// Destroy an agent. Its queued messages bounce; pending RPCs it issued
  /// are dropped.
  void dispose(AgentId id);

  /// Start migrating an agent to `destination`. The agent disappears from
  /// its node immediately and reappears (triggering `on_arrival`) after the
  /// transfer latency. Throws when the agent is unknown or already in
  /// transit.
  void migrate(AgentId id, net::NodeId destination);

  /// Fire-and-forget message.
  void send(AgentId from, const AgentAddress& to, util::PayloadBox body,
            std::size_t wire_bytes);

  /// Request/response. `callback` fires exactly once: with the reply, a
  /// bounce, or a timeout. Replies route to the callback, not to
  /// `on_message`.
  void request(AgentId from, const AgentAddress& to, util::PayloadBox body,
               std::size_t wire_bytes, RpcCallback callback,
               std::optional<sim::SimTime> timeout = std::nullopt);

  /// Respond to a request received in `on_message`.
  void reply(const Message& request, AgentId from, util::PayloadBox body,
             std::size_t wire_bytes);

  /// --- Node-local service registry -------------------------------------
  /// Stationary per-node infrastructure (the paper's LHAgents) registers
  /// here so that newly created or arriving agents can find it without any
  /// remote communication. Names are interned to small integer keys; each
  /// node holds a sorted vector of (key, agent) so the arrival-path lookup
  /// is a name-table probe plus a binary search, not a `std::map` walk.
  using ServiceKey = std::uint32_t;

  void register_service(net::NodeId node, const std::string& name,
                        AgentId agent);
  void unregister_service(net::NodeId node, const std::string& name);
  std::optional<AgentId> lookup_service(net::NodeId node,
                                        const std::string& name) const;

  /// Intern `name`, returning the key accepted by the key-based overload —
  /// hot callers resolve the key once and skip the string compare forever.
  ServiceKey service_key(std::string_view name);
  std::optional<AgentId> lookup_service(net::NodeId node,
                                        ServiceKey key) const;

  /// --- Core-layer stats hooks -------------------------------------------
  /// Called by the update-batching layer when it flushes a batch that
  /// absorbed `coalesced` updates which would otherwise have been messages.
  void note_batch_flush(std::uint64_t coalesced) noexcept {
    ++stats_.batch_flushes;
    stats_.messages_coalesced += coalesced;
  }

  /// Node-local residency check: is `agent` currently hosted *at `node`*?
  /// Unlike the global oracles below, this is information the node itself
  /// holds (the runtime knows its residents), so per-node infrastructure —
  /// an LHAgent answering a location probe (DESIGN.md §12) — may consult it
  /// for its own node without any communication. An agent in transit is
  /// resident nowhere.
  bool hosts(net::NodeId node, AgentId agent) const noexcept;

  /// --- Introspection (test oracle / benches; not used by protocols) -----
  bool exists(AgentId id) const noexcept;
  bool in_transit(AgentId id) const noexcept;

  /// Ground-truth node of an agent (nullopt while in transit or unknown).
  std::optional<net::NodeId> node_of(AgentId id) const noexcept;

  /// Agent pointer for white-box assertions; nullptr if disposed.
  Agent* find(AgentId id) noexcept;

  std::size_t live_agent_count() const noexcept { return index_.size(); }

  /// Number of messages waiting in an agent's inbox (including the one in
  /// service).
  std::size_t inbox_depth(AgentId id) const noexcept;

  /// Inbox ring buffers parked in the recycling pool (white-box tests).
  std::size_t pooled_inbox_count() const noexcept {
    return inbox_pool_.size();
  }

  /// Estimate of the platform's resident heap footprint: record slab and
  /// RPC table slots, live and pooled inbox rings, the in-flight message
  /// pool, and the service registry. Counts capacities (what is allocated),
  /// not sizes (what is momentarily occupied), because pooled capacity is
  /// what the process actually holds at steady state. O(1): the inbox and
  /// service byte totals are tracked incrementally.
  std::size_t estimated_resident_bytes() const noexcept;

  /// The same estimate, itemized by subsystem.
  MemoryBreakdown memory_breakdown() const noexcept;

  /// Pre-size the record slab and id index for `agents` installs (also
  /// reachable via `Config::reserve_agents`). Purely an allocation hint:
  /// trajectories are identical with or without it.
  void reserve(std::size_t agents);

 private:
  enum class State : std::uint8_t { kActive, kInTransit };

  /// Hot per-agent record: everything the delivery and serve paths touch,
  /// packed into one cache line, separate from the cold owning pointer in
  /// `agents_`. A vacant slot has `id == kNoAgent` and waits on
  /// `free_slots_`.
  struct Slot {
    AgentId id = kNoAgent;
    /// Mirror of `Agent::node_` (the system is the only writer of both), so
    /// residency checks never touch the cold agent object. `kNoNode` while
    /// in transit.
    net::NodeId node = net::kNoNode;
    /// Bumped on migrate, dispose, and slot release so stale scheduled
    /// events (which capture `{slot, generation}`) become no-ops — the slab
    /// analogue of the event pool's generation tags.
    std::uint32_t generation = 0;
    State state = State::kActive;
    bool serving = false;
    /// Teardown in progress: reentrant dispose of the same id is a no-op.
    bool disposing = false;
    /// Cross-shard departure in progress: like `disposing`, new `request`s
    /// fail synchronously (their callbacks could otherwise fire after the
    /// object moves to another shard's thread), but `send` stays legal so
    /// failure continuations can still emit teardown messages from the
    /// source node.
    bool departing = false;
    util::RingBuffer<Message> inbox;
  };

  struct PendingRpc {
    AgentId from = kNoAgent;
    RpcCallback callback;
    sim::EventId timeout_event = sim::kInvalidEvent;
  };

  /// A message between transmit and delivery. Slots are pooled so the
  /// simulator event only carries {system, slot, node} — small enough for
  /// the engine's inline handler storage, so the hot path never allocates.
  /// `next` doubles as the free-list link and, while in flight, the chain
  /// link of a coalesced delivery burst.
  struct InFlight {
    Message message;
    std::uint32_t next = 0;
    std::uint8_t remaining = 0;
  };

  /// Scheduled delivery of one pooled in-flight message (the duplicated-
  /// copy path): 16 trivially-copyable bytes, so the simulator stores and
  /// replays it without touching the heap.
  struct DeliveryEvent {
    AgentSystem* system;
    std::uint32_t slot;
    net::NodeId node;

    void operator()() const { system->on_delivery(slot, node); }
  };

  /// Scheduled delivery of a chain of coalesced messages bound for the same
  /// node at the same instant. A burst of k messages costs one simulator
  /// event instead of k; `transmit` only appends when that merge is provably
  /// order-preserving (see the checks there).
  struct BurstEvent {
    AgentSystem* system;
    std::uint32_t head;
    net::NodeId node;

    void operator()() const { system->on_burst(head, node); }
  };

  static constexpr std::uint32_t kNoSlot = 0xffffffff;
  static constexpr std::uint32_t kNoRecord = 0xffffffff;
  static constexpr std::size_t kMaxPooledInboxes = 256;

  void install(std::unique_ptr<Agent> owned, net::NodeId node);
  AgentId allocate_id();

  /// Shared install core: wire up the agent, acquire a record slot, index
  /// the id. Returns the slot. Does not schedule `on_start` or touch the
  /// created/migrated counters — the callers differ there.
  std::uint32_t install_record(std::unique_ptr<Agent> owned, AgentId id,
                               net::NodeId node);
  void schedule_on_start(std::uint32_t slot);

  /// Source half of a cross-shard migration: fail pending RPCs, bounce the
  /// inbox, extract the owning pointer, and hand it to the shard host.
  void extract_and_ship(std::uint32_t slot, net::NodeId destination);
  void plan_remote_migration(std::unique_ptr<Agent> agent, AgentId id,
                             net::NodeId source, net::NodeId destination,
                             std::size_t bytes);

  /// id → slot index, `kNoRecord` when the id is not installed.
  std::uint32_t record_index(AgentId id) const noexcept;
  Slot* find_record(AgentId id) noexcept;
  const Slot* find_record(AgentId id) const noexcept;

  std::uint32_t acquire_record_slot();
  void release_record_slot(std::uint32_t slot) noexcept;

  void ship_migration(std::uint32_t slot, std::uint32_t generation,
                      net::NodeId source, net::NodeId destination,
                      std::size_t bytes);
  void transmit(Message message, net::NodeId to_node);
  void on_delivery(std::uint32_t slot, net::NodeId node);
  void on_burst(std::uint32_t head, net::NodeId node);
  void deliver(net::NodeId node, Message message);
  void enqueue(std::uint32_t slot, Message&& message);
  void serve_next(std::uint32_t slot, std::uint32_t generation);
  void dispatch(Agent& agent, Message& message);
  void bounce(const Message& message);
  void complete_rpc(std::uint64_t correlation, RpcResult result);
  void drop_rpcs_from(AgentId id);

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot) noexcept;

  util::RingBuffer<Message> acquire_inbox();
  void recycle_inbox(util::RingBuffer<Message>&& inbox);
  void drain_inbox_bouncing(Slot& record);

  void unregister_agent_services(net::NodeId node, AgentId id);

  /// Record a new resident-bytes high-water mark. Called at allocation
  /// growth points only, which is where the (capacity-counting) estimate can
  /// actually move up.
  void note_memory_high_water() noexcept;

  sim::Simulator& simulator_;
  net::Network& network_;
  /// Default message-plane backend (wraps `network_`) and the seam pointer
  /// every transmission goes through. `set_transport` repoints the latter.
  net::SimTransport sim_transport_;
  net::Transport* transport_;
  Config config_;
  PlatformStats stats_;

  /// Sharded deployment wiring; nullptr (the default) keeps every transmit
  /// and migration on the legacy local path.
  ShardHost* host_ = nullptr;
  std::uint32_t shard_index_ = 0;

  std::uint64_t id_counter_ = 0;
  std::uint64_t correlation_counter_ = 0;

  /// Agent records, slab style: `index_` maps the (uniformly mixed, public)
  /// id to a dense slot; `slots_` holds the hot fields; `agents_` the cold
  /// owning pointers, parallel to `slots_`. Vacant slots are recycled via
  /// `free_slots_`. `slots_` only ever grows (push_back may reallocate, so
  /// never hold a `Slot&` across agent callbacks — re-index instead; erasure
  /// never moves records).
  util::FlatMap<AgentId, std::uint32_t, kNoAgent> index_;
  std::vector<Slot> slots_;
  std::vector<std::unique_ptr<Agent>> agents_;
  std::vector<std::uint32_t> free_slots_;

  util::FlatMap<std::uint64_t, PendingRpc, 0> pending_rpcs_;

  /// Incrementally tracked byte totals, so `estimated_resident_bytes` is
  /// O(1) and cheap enough to sample at every growth point.
  std::size_t live_inbox_bytes_ = 0;
  std::size_t pooled_inbox_bytes_ = 0;
  std::size_t service_bytes_ = 0;

  /// Interned service names; index in this vector IS the `ServiceKey`.
  std::vector<std::string> service_names_;
  /// Per node: (key, agent), sorted by key.
  std::vector<std::vector<std::pair<ServiceKey, AgentId>>> services_;

  std::vector<InFlight> in_flight_;
  std::uint32_t in_flight_free_ = kNoSlot;

  /// The open delivery burst: tail slot of the chain scheduled by
  /// `open_event_` to land on `open_node_` at `open_when_`. `open_stamp_`
  /// snapshots the simulator's schedule stamp right after that event was
  /// scheduled; any later schedule invalidates the merge (order would no
  /// longer be provably identical), as does the event firing.
  std::uint32_t open_tail_ = kNoSlot;
  net::NodeId open_node_ = 0;
  sim::SimTime open_when_ = sim::SimTime::zero();
  sim::EventId open_event_ = sim::kInvalidEvent;
  std::uint64_t open_stamp_ = 0;

  std::vector<util::RingBuffer<Message>> inbox_pool_;

  /// Agents disposed from inside their own callbacks wait here until the
  /// current event finishes.
  std::vector<std::unique_ptr<Agent>> graveyard_;
  bool graveyard_sweep_scheduled_ = false;
};

}  // namespace agentloc::platform
