#pragma once

#include <string>

#include "platform/message.hpp"

namespace agentloc::platform {

class AgentSystem;

/// Base class for every agent hosted by the platform.
///
/// Mirrors the Aglets programming model the paper implements against:
/// agents have a lifecycle (`on_start` after creation, `on_arrival` after
/// each migration, `on_dispose` before destruction), receive asynchronous
/// messages, and may themselves migrate and send messages through the
/// hosting system. All callbacks run on the simulator thread; an agent never
/// runs while in transit.
class Agent {
 public:
  virtual ~Agent() = default;

  AgentId id() const noexcept { return id_; }

  /// Node currently hosting this agent. Valid except while in transit.
  net::NodeId node() const noexcept { return node_; }

  /// Human-readable type tag for logs ("iagent", "tagent", ...).
  virtual std::string kind() const { return "agent"; }

  /// Size of the serialized agent image charged when migrating. The default
  /// matches a small Java agent (class refs + state); stateful agents (e.g.
  /// IAgents carrying their location tables) override it.
  virtual std::size_t serialized_size() const { return 2048; }

  /// Invoked once, after the agent is installed at its creation node.
  virtual void on_start() {}

  /// Invoked after a migration completes, at the new node.
  virtual void on_arrival(net::NodeId from_node) { (void)from_node; }

  /// Invoked for every non-reply message addressed to this agent.
  virtual void on_message(const Message& message) { (void)message; }

  /// Invoked when the platform bounces an undeliverable send of ours.
  virtual void on_delivery_failure(const DeliveryFailure& failure) {
    (void)failure;
  }

  /// Invoked just before the platform destroys the agent.
  virtual void on_dispose() {}

  /// Invoked on the source shard right before a cross-shard migration ships
  /// this agent object to another logical process (sharded deployments only;
  /// DESIGN.md §16). Timers hold references to the source shard's simulator
  /// and must be destroyed here; recreate them in `on_shard_transfer`.
  virtual void on_extract() {}

  /// Invoked on the destination shard right after a cross-shard migration
  /// installs the agent there, before `on_arrival` runs. `system()` already
  /// refers to the new shard; recreate simulator-bound resources here.
  virtual void on_shard_transfer() {}

 protected:
  /// The hosting system. Only valid once the agent has been installed
  /// (i.e. from `on_start` onwards).
  AgentSystem& system() const noexcept { return *system_; }

 private:
  friend class AgentSystem;

  AgentSystem* system_ = nullptr;
  AgentId id_ = kNoAgent;
  net::NodeId node_ = net::kNoNode;
};

}  // namespace agentloc::platform
