#pragma once

#include <cstdint>
#include <memory>

#include "platform/message.hpp"
#include "sim/time.hpp"

namespace agentloc::platform {

class Agent;

/// Host-side routing surface of a sharded deployment (DESIGN.md §16).
///
/// A sharded run partitions the simulated nodes across logical processes:
/// each shard owns one `AgentSystem` (agent records, inboxes, RPC table,
/// service registry) plus the scheme state resident on its node set, under a
/// single-writer discipline — only the owning LP's execution context ever
/// touches them. The platform stays ignorant of the LP engine; whenever a
/// transmit or migration targets a node another shard owns, the system hands
/// the envelope to this interface and the host (the experiment driver)
/// forwards it over `sim::ParallelSimulator::post`, whose (time, src-LP,
/// send-seq) key makes cross-shard arrival order deterministic for every
/// worker-thread count.
///
/// All methods are invoked from the calling shard's execution context with
/// `when >= now + lookahead` (every cross-node latency is at least the
/// model's floor), which is exactly the engine's posting contract.
class ShardHost {
 public:
  virtual ~ShardHost() = default;

  /// The shard (logical process) owning `node`.
  virtual std::uint32_t shard_of(net::NodeId node) const noexcept = 0;

  /// Deliver `message` to `to_node` on its owning shard at absolute time
  /// `when` (the destination system's `deliver_remote`).
  virtual void post_message(std::uint32_t from_shard, net::NodeId to_node,
                            sim::SimTime when, Message message) = 0;

  /// Ship a migrating agent object to the shard owning `to_node`, arriving
  /// at absolute time `when`. The host must, on the destination LP at
  /// `when`: `adopt_migrated` the agent, rebind/import any scheme-side
  /// client state, then `notify_arrival` — in that order, so `on_arrival`
  /// runs against fully transferred state.
  virtual void post_migration(std::uint32_t from_shard,
                              std::unique_ptr<Agent> agent, AgentId id,
                              net::NodeId from_node, net::NodeId to_node,
                              sim::SimTime when) = 0;
};

}  // namespace agentloc::platform
