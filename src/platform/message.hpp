#pragma once

#include <cstdint>
#include <iosfwd>

#include "net/latency.hpp"
#include "util/payload_box.hpp"

namespace agentloc::platform {

/// Platform-wide unique agent identifier.
///
/// The location mechanism hashes *the binary representation of the id*
/// (paper §3), so the distribution of id bits matters: `AgentSystem` assigns
/// ids by mixing a counter through SplitMix64, giving uniform bits without
/// any platform-specific naming structure — the paper's stated independence
/// from agent-naming schemes.
using AgentId = std::uint64_t;
inline constexpr AgentId kNoAgent = 0;

/// Where an agent is believed to live: hosting node plus id.
struct AgentAddress {
  net::NodeId node = net::kNoNode;
  AgentId agent = kNoAgent;

  friend bool operator==(const AgentAddress&, const AgentAddress&) = default;
};

std::ostream& operator<<(std::ostream& os, const AgentAddress& address);

/// An inter-agent message as delivered to `Agent::on_message`.
///
/// The payload is type-erased: protocol layers define plain structs and
/// retrieve them with `body_as<T>()`. Every fixed-size protocol struct lives
/// inline in the `util::PayloadBox` (no allocation per message); only
/// oversized control-plane payloads spill to the heap. `wire_bytes` is the
/// serialized size the sender declared; the network charges latency for it,
/// so protocol structs report honest sizes (see `core/protocol.hpp`).
struct Message {
  AgentId from = kNoAgent;
  net::NodeId from_node = net::kNoNode;
  AgentId to = kNoAgent;

  /// Non-zero on requests and replies; used by the RPC helper.
  std::uint64_t correlation = 0;
  bool is_reply = false;

  std::size_t wire_bytes = 0;
  util::PayloadBox body;

  /// Typed view of the payload; nullptr when the body holds another type.
  template <typename T>
  const T* body_as() const noexcept {
    return body.get_if<T>();
  }
};

/// System payload bounced to the sender when the destination node does not
/// currently host the target agent (it migrated away, or was disposed).
/// Protocol layers treat it as "stale location — re-resolve and retry".
struct DeliveryFailure {
  AgentAddress attempted;
  /// Correlation id of the failed request, if it was one.
  std::uint64_t correlation = 0;
};

}  // namespace agentloc::platform
