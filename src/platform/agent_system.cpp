#include "platform/agent_system.hpp"

#include <ostream>
#include <stdexcept>

#include "util/logging.hpp"
#include "util/rng.hpp"

namespace agentloc::platform {

std::ostream& operator<<(std::ostream& os, const AgentAddress& address) {
  return os << "node" << address.node << "/agent" << address.agent;
}

AgentSystem::AgentSystem(sim::Simulator& simulator, net::Network& network)
    : AgentSystem(simulator, network, Config{}) {}

AgentSystem::AgentSystem(sim::Simulator& simulator, net::Network& network,
                         Config config)
    : simulator_(simulator),
      network_(network),
      config_(config),
      services_(network.node_count()) {}

AgentSystem::~AgentSystem() = default;

AgentId AgentSystem::allocate_id() {
  for (;;) {
    ++id_counter_;
    const AgentId id =
        config_.mixed_ids ? util::mix64(id_counter_) : id_counter_;
    if (id != kNoAgent && !records_.contains(id)) return id;
  }
}

void AgentSystem::install(std::unique_ptr<Agent> owned, net::NodeId node) {
  if (node >= network_.node_count()) {
    throw std::out_of_range("AgentSystem::create: node out of range");
  }
  Agent& agent = *owned;
  agent.system_ = this;
  agent.id_ = allocate_id();
  agent.node_ = node;

  Record record;
  record.agent = std::move(owned);
  const AgentId id = agent.id();
  const std::uint64_t epoch = record.epoch;
  records_.emplace(id, std::move(record));
  ++stats_.agents_created;

  simulator_.schedule_after(sim::SimTime::zero(), [this, id, epoch] {
    const auto it = records_.find(id);
    if (it == records_.end() || it->second.epoch != epoch) return;
    it->second.agent->on_start();
  });
}

void AgentSystem::dispose(AgentId id) {
  const auto it = records_.find(id);
  if (it == records_.end()) return;
  Record& record = it->second;
  ++record.epoch;

  // Queued messages can no longer be served; bounce them to their senders.
  for (Message& message : record.inbox) bounce(message);
  record.inbox.clear();

  drop_rpcs_from(id);

  // Remove any service registrations pointing at the agent.
  const net::NodeId node = record.agent->node();
  if (node < services_.size()) {
    auto& local = services_[node];
    for (auto sit = local.begin(); sit != local.end();) {
      sit = sit->second == id ? local.erase(sit) : std::next(sit);
    }
  }

  record.agent->on_dispose();
  record.agent->system_ = nullptr;

  // The agent may be disposing itself from inside one of its own callbacks;
  // defer destruction until the stack unwinds.
  graveyard_.push_back(std::move(record.agent));
  records_.erase(it);
  ++stats_.agents_disposed;
  if (!graveyard_sweep_scheduled_) {
    graveyard_sweep_scheduled_ = true;
    simulator_.schedule_after(sim::SimTime::zero(), [this] {
      graveyard_sweep_scheduled_ = false;
      graveyard_.clear();
    });
  }
}

void AgentSystem::migrate(AgentId id, net::NodeId destination) {
  if (destination >= network_.node_count()) {
    throw std::out_of_range("AgentSystem::migrate: node out of range");
  }
  const auto it = records_.find(id);
  if (it == records_.end()) {
    throw std::logic_error("AgentSystem::migrate: unknown agent");
  }
  Record& record = it->second;
  if (record.state != State::kActive) {
    throw std::logic_error("AgentSystem::migrate: agent already in transit");
  }

  const net::NodeId source = record.agent->node();
  ++record.epoch;
  record.state = State::kInTransit;
  record.serving = false;
  for (Message& message : record.inbox) bounce(message);
  record.inbox.clear();

  // A mobile service provider leaves its registrations behind.
  auto& local = services_[source];
  for (auto sit = local.begin(); sit != local.end();) {
    sit = sit->second == id ? local.erase(sit) : std::next(sit);
  }

  record.agent->node_ = net::kNoNode;
  ++stats_.migrations_started;
  ship_migration(id, record.epoch, source, destination,
                 record.agent->serialized_size());
}

void AgentSystem::ship_migration(AgentId id, std::uint64_t epoch,
                                 net::NodeId source, net::NodeId destination,
                                 std::size_t bytes) {
  const bool sent = network_.send(
      source, destination, bytes, [this, id, epoch, source, destination] {
        const auto it = records_.find(id);
        if (it == records_.end() || it->second.epoch != epoch) return;
        Record& record = it->second;
        // A fault plan may duplicate the transfer; only the first copy
        // installs the agent.
        if (record.state != State::kInTransit) return;
        record.state = State::kActive;
        record.agent->node_ = destination;
        ++stats_.migrations_completed;
        record.agent->on_arrival(source);
      });
  if (!sent) {
    // Migration rides reliable transport: retry until the fault plan lets
    // it through (a partitioned destination delays, never loses, the agent).
    simulator_.schedule_after(
        config_.migration_retry,
        [this, id, epoch, source, destination, bytes] {
          const auto it = records_.find(id);
          if (it == records_.end() || it->second.epoch != epoch) return;
          ship_migration(id, epoch, source, destination, bytes);
        });
  }
}

void AgentSystem::send(AgentId from, const AgentAddress& to, std::any body,
                       std::size_t wire_bytes) {
  const auto it = records_.find(from);
  if (it == records_.end() || it->second.state != State::kActive) {
    throw std::logic_error("AgentSystem::send: sender not active");
  }
  Message message;
  message.from = from;
  message.from_node = it->second.agent->node();
  message.to = to.agent;
  message.wire_bytes = wire_bytes;
  message.body = std::move(body);
  transmit(std::move(message), to.node);
}

void AgentSystem::request(AgentId from, const AgentAddress& to, std::any body,
                          std::size_t wire_bytes,
                          std::function<void(RpcResult)> callback,
                          std::optional<sim::SimTime> timeout) {
  const auto it = records_.find(from);
  if (it == records_.end() || it->second.state != State::kActive) {
    throw std::logic_error("AgentSystem::request: sender not active");
  }
  const std::uint64_t correlation = ++correlation_counter_;

  PendingRpc pending;
  pending.from = from;
  pending.callback = std::move(callback);
  pending.timeout_event = simulator_.schedule_after(
      timeout.value_or(config_.default_rpc_timeout), [this, correlation] {
        const auto pit = pending_rpcs_.find(correlation);
        if (pit == pending_rpcs_.end()) return;
        auto cb = std::move(pit->second.callback);
        pending_rpcs_.erase(pit);
        ++stats_.rpc_timeouts;
        RpcResult result;
        result.status = RpcResult::Status::kTimeout;
        cb(result);
      });
  pending_rpcs_.emplace(correlation, std::move(pending));

  Message message;
  message.from = from;
  message.from_node = it->second.agent->node();
  message.to = to.agent;
  message.correlation = correlation;
  message.wire_bytes = wire_bytes;
  message.body = std::move(body);
  transmit(std::move(message), to.node);
}

void AgentSystem::reply(const Message& request, AgentId from, std::any body,
                        std::size_t wire_bytes) {
  const auto it = records_.find(from);
  if (it == records_.end() || it->second.state != State::kActive) {
    throw std::logic_error("AgentSystem::reply: sender not active");
  }
  Message message;
  message.from = from;
  message.from_node = it->second.agent->node();
  message.to = request.from;
  message.correlation = request.correlation;
  message.is_reply = true;
  message.wire_bytes = wire_bytes;
  message.body = std::move(body);
  transmit(std::move(message), request.from_node);
}

void AgentSystem::transmit(Message message, net::NodeId to_node) {
  ++stats_.messages_sent;
  network_.send(message.from_node, to_node, message.wire_bytes,
                [this, to_node, message = std::move(message)] {
                  deliver(to_node, message);
                });
}

void AgentSystem::deliver(net::NodeId node, Message message) {
  const auto it = records_.find(message.to);
  const bool present = it != records_.end() &&
                       it->second.state == State::kActive &&
                       it->second.agent->node() == node;
  if (!present) {
    bounce(message);
    return;
  }
  enqueue(it->second, std::move(message));
}

void AgentSystem::enqueue(Record& record, Message message) {
  record.inbox.push_back(std::move(message));
  if (!record.serving) {
    record.serving = true;
    const AgentId id = record.agent->id();
    const std::uint64_t epoch = record.epoch;
    simulator_.schedule_after(config_.service_time,
                              [this, id, epoch] { serve_next(id, epoch); });
  }
}

void AgentSystem::serve_next(AgentId id, std::uint64_t epoch) {
  auto it = records_.find(id);
  if (it == records_.end() || it->second.epoch != epoch ||
      !it->second.serving || it->second.inbox.empty()) {
    return;
  }
  Message message = std::move(it->second.inbox.front());
  it->second.inbox.pop_front();
  ++stats_.messages_processed;
  dispatch(*it->second.agent, message);

  // The handler may have migrated or disposed the agent; re-resolve.
  it = records_.find(id);
  if (it == records_.end() || it->second.epoch != epoch) return;
  if (it->second.inbox.empty()) {
    it->second.serving = false;
  } else {
    simulator_.schedule_after(config_.service_time,
                              [this, id, epoch] { serve_next(id, epoch); });
  }
}

void AgentSystem::dispatch(Agent& agent, const Message& message) {
  if (message.is_reply) {
    RpcResult result;
    result.status = RpcResult::Status::kOk;
    result.reply = message;
    complete_rpc(message.correlation, std::move(result));
    return;
  }
  if (const auto* failure = message.body_as<DeliveryFailure>()) {
    if (failure->correlation != 0 &&
        pending_rpcs_.contains(failure->correlation)) {
      RpcResult result;
      result.status = RpcResult::Status::kDeliveryFailure;
      complete_rpc(failure->correlation, std::move(result));
    } else {
      agent.on_delivery_failure(*failure);
    }
    return;
  }
  agent.on_message(message);
}

void AgentSystem::bounce(const Message& message) {
  ++stats_.messages_bounced;
  if (!config_.bounce_undeliverable) return;
  // System messages (bounces themselves) are never bounced back: no loops.
  if (message.from == kNoAgent || message.body.type() == typeid(DeliveryFailure)) {
    return;
  }
  Message notice;
  notice.from = kNoAgent;
  notice.from_node = message.from_node;  // charged as a remote round trip
  notice.to = message.from;
  notice.wire_bytes = 64;
  DeliveryFailure failure;
  failure.attempted = AgentAddress{net::kNoNode, message.to};
  failure.correlation = message.correlation;
  notice.body = failure;
  transmit(std::move(notice), message.from_node);
}

void AgentSystem::complete_rpc(std::uint64_t correlation, RpcResult result) {
  const auto it = pending_rpcs_.find(correlation);
  if (it == pending_rpcs_.end()) return;  // already timed out or completed
  simulator_.cancel(it->second.timeout_event);
  auto callback = std::move(it->second.callback);
  pending_rpcs_.erase(it);
  callback(std::move(result));
}

void AgentSystem::drop_rpcs_from(AgentId id) {
  // Complete (rather than leak) the requests of a disposing agent: the
  // callbacks are plain closures that may carry continuations beyond the
  // agent itself, and they are written to tolerate the agent being gone.
  std::vector<std::function<void(RpcResult)>> callbacks;
  for (auto it = pending_rpcs_.begin(); it != pending_rpcs_.end();) {
    if (it->second.from == id) {
      simulator_.cancel(it->second.timeout_event);
      callbacks.push_back(std::move(it->second.callback));
      it = pending_rpcs_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto& callback : callbacks) {
    RpcResult result;
    result.status = RpcResult::Status::kDeliveryFailure;
    callback(std::move(result));
  }
}

void AgentSystem::register_service(net::NodeId node, const std::string& name,
                                   AgentId agent) {
  if (node >= services_.size()) {
    throw std::out_of_range("AgentSystem::register_service: node");
  }
  services_[node][name] = agent;
}

void AgentSystem::unregister_service(net::NodeId node,
                                     const std::string& name) {
  if (node >= services_.size()) {
    throw std::out_of_range("AgentSystem::unregister_service: node");
  }
  services_[node].erase(name);
}

std::optional<AgentId> AgentSystem::lookup_service(
    net::NodeId node, const std::string& name) const {
  if (node >= services_.size()) return std::nullopt;
  const auto& local = services_[node];
  const auto it = local.find(name);
  if (it == local.end()) return std::nullopt;
  return it->second;
}

bool AgentSystem::exists(AgentId id) const noexcept {
  return records_.contains(id);
}

bool AgentSystem::in_transit(AgentId id) const noexcept {
  const auto it = records_.find(id);
  return it != records_.end() && it->second.state == State::kInTransit;
}

std::optional<net::NodeId> AgentSystem::node_of(AgentId id) const noexcept {
  const auto it = records_.find(id);
  if (it == records_.end() || it->second.state != State::kActive) {
    return std::nullopt;
  }
  return it->second.agent->node();
}

Agent* AgentSystem::find(AgentId id) noexcept {
  const auto it = records_.find(id);
  return it == records_.end() ? nullptr : it->second.agent.get();
}

std::size_t AgentSystem::inbox_depth(AgentId id) const noexcept {
  const auto it = records_.find(id);
  return it == records_.end() ? 0 : it->second.inbox.size();
}

}  // namespace agentloc::platform
