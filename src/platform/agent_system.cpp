#include "platform/agent_system.hpp"

#include <algorithm>
#include <ostream>
#include <stdexcept>
#include <type_traits>

#include "platform/shard.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace agentloc::platform {

std::ostream& operator<<(std::ostream& os, const AgentAddress& address) {
  return os << "node" << address.node << "/agent" << address.agent;
}

AgentSystem::AgentSystem(sim::Simulator& simulator, net::Network& network)
    : AgentSystem(simulator, network, Config{}) {}

AgentSystem::AgentSystem(sim::Simulator& simulator, net::Network& network,
                         Config config)
    : simulator_(simulator),
      network_(network),
      sim_transport_(network),
      transport_(&sim_transport_),
      config_(config),
      services_(network.node_count()) {
  if (config_.reserve_agents > 0) reserve(config_.reserve_agents);
}

AgentSystem::~AgentSystem() = default;

void AgentSystem::reserve(std::size_t agents) {
  index_.reserve(agents);
  slots_.reserve(agents);
  agents_.reserve(agents);
}

AgentId AgentSystem::allocate_id() {
  for (;;) {
    ++id_counter_;
    // Stride/salt partition the sequence across shards (Config::id_stride);
    // the defaults (1, 0) leave it exactly the historic `++id_counter_`.
    const std::uint64_t seq =
        id_counter_ * config_.id_stride + config_.id_salt;
    const AgentId id = config_.mixed_ids ? util::mix64(seq) : seq;
    if (id != kNoAgent && !index_.contains(id)) return id;
  }
}

std::uint32_t AgentSystem::record_index(AgentId id) const noexcept {
  const std::uint32_t* slot = index_.find(id);
  return slot == nullptr ? kNoRecord : *slot;
}

AgentSystem::Slot* AgentSystem::find_record(AgentId id) noexcept {
  const std::uint32_t slot = record_index(id);
  return slot == kNoRecord ? nullptr : &slots_[slot];
}

const AgentSystem::Slot* AgentSystem::find_record(AgentId id) const noexcept {
  const std::uint32_t slot = record_index(id);
  return slot == kNoRecord ? nullptr : &slots_[slot];
}

std::uint32_t AgentSystem::acquire_record_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  slots_.emplace_back();
  agents_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void AgentSystem::release_record_slot(std::uint32_t slot) noexcept {
  Slot& record = slots_[slot];
  record.id = kNoAgent;
  record.node = net::kNoNode;
  // Invalidate every event still holding this slot's previous tenancy —
  // whoever is installed here next starts with a fresh generation.
  ++record.generation;
  record.state = State::kActive;
  record.serving = false;
  record.disposing = false;
  record.departing = false;
  free_slots_.push_back(slot);
}

std::uint32_t AgentSystem::acquire_slot() {
  if (in_flight_free_ != kNoSlot) {
    const std::uint32_t slot = in_flight_free_;
    in_flight_free_ = in_flight_[slot].next;
    return slot;
  }
  in_flight_.emplace_back();
  note_memory_high_water();
  return static_cast<std::uint32_t>(in_flight_.size() - 1);
}

void AgentSystem::release_slot(std::uint32_t slot) noexcept {
  in_flight_[slot].next = in_flight_free_;
  in_flight_free_ = slot;
}

util::RingBuffer<Message> AgentSystem::acquire_inbox() {
  if (inbox_pool_.empty()) return {};
  util::RingBuffer<Message> inbox = std::move(inbox_pool_.back());
  inbox_pool_.pop_back();
  const std::size_t bytes = inbox.capacity() * sizeof(Message);
  pooled_inbox_bytes_ -= bytes;
  live_inbox_bytes_ += bytes;
  return inbox;
}

void AgentSystem::recycle_inbox(util::RingBuffer<Message>&& inbox) {
  const std::size_t bytes = inbox.capacity() * sizeof(Message);
  live_inbox_bytes_ -= bytes;
  if (inbox.capacity() == 0) return;  // nothing warmed up, nothing to keep
  if (inbox_pool_.size() >= kMaxPooledInboxes) return;  // let it free
  pooled_inbox_bytes_ += bytes;
  inbox_pool_.push_back(std::move(inbox));
}

void AgentSystem::drain_inbox_bouncing(Slot& record) {
  while (!record.inbox.empty()) {
    const Message message = record.inbox.pop_front();
    bounce(message);
  }
}

std::uint32_t AgentSystem::install_record(std::unique_ptr<Agent> owned,
                                          AgentId id, net::NodeId node) {
  if (node >= transport_->node_count()) {
    throw std::out_of_range("AgentSystem::create: node out of range");
  }
  Agent& agent = *owned;
  agent.system_ = this;
  agent.id_ = id;
  agent.node_ = node;

  const std::uint32_t slot = acquire_record_slot();
  Slot& record = slots_[slot];
  record.id = id;
  record.node = node;
  record.inbox = acquire_inbox();
  agents_[slot] = std::move(owned);
  index_.emplace(id, slot);
  note_memory_high_water();
  return slot;
}

void AgentSystem::schedule_on_start(std::uint32_t slot) {
  const std::uint32_t generation = slots_[slot].generation;
  simulator_.schedule_after(sim::SimTime::zero(), [this, slot, generation] {
    Slot& record = slots_[slot];
    if (record.generation != generation) return;
    agents_[slot]->on_start();
  });
}

void AgentSystem::install(std::unique_ptr<Agent> owned, net::NodeId node) {
  const std::uint32_t slot =
      install_record(std::move(owned), allocate_id(), node);
  ++stats_.agents_created;
  schedule_on_start(slot);
}

void AgentSystem::install_spawned(std::unique_ptr<Agent> owned, AgentId id,
                                  net::NodeId node) {
  if (id == kNoAgent || index_.contains(id)) {
    throw std::logic_error("AgentSystem::install_spawned: id in use");
  }
  const std::uint32_t slot = install_record(std::move(owned), id, node);
  ++stats_.agents_created;
  schedule_on_start(slot);
}

void AgentSystem::adopt_migrated(std::unique_ptr<Agent> owned, AgentId id,
                                 net::NodeId node) {
  if (id == kNoAgent || index_.contains(id)) {
    throw std::logic_error("AgentSystem::adopt_migrated: id in use");
  }
  const std::uint32_t slot = install_record(std::move(owned), id, node);
  transport_->note_delivered(node);
  ++stats_.migrations_completed;
  agents_[slot]->on_shard_transfer();
}

void AgentSystem::notify_arrival(AgentId id, net::NodeId from_node) {
  const std::uint32_t slot = record_index(id);
  if (slot == kNoRecord) return;  // disposed between adopt and notify
  agents_[slot]->on_arrival(from_node);
}

void AgentSystem::deliver_remote(net::NodeId node, Message message) {
  transport_->note_delivered(node);
  deliver(node, std::move(message));
}

void AgentSystem::dispose(AgentId id) {
  const std::uint32_t slot = record_index(id);
  if (slot == kNoRecord || slots_[slot].disposing) return;
  slots_[slot].disposing = true;  // reentrant dispose(id) becomes a no-op
  ++slots_[slot].generation;

  // Queued messages can no longer be served; bounce them to their senders.
  // The inbox moves to a local buffer first — bounce only transmits, but the
  // slot reference would not survive the callbacks below if they install
  // agents (slab growth may reallocate).
  util::RingBuffer<Message> inbox = std::move(slots_[slot].inbox);
  while (!inbox.empty()) {
    const Message message = inbox.pop_front();
    bounce(message);
  }
  recycle_inbox(std::move(inbox));

  // The dropped-RPC callbacks and on_dispose may create or dispose other
  // agents; erasure never moves slab records, but growth may reallocate the
  // arrays, so re-index `slots_[slot]` after each.
  drop_rpcs_from(id);

  // Remove any service registrations pointing at the agent.
  unregister_agent_services(slots_[slot].node, id);

  // The contract protocol teardown relies on: on_dispose runs before
  // removal, so the agent can still send (e.g. deregister itself).
  agents_[slot]->on_dispose();

  agents_[slot]->system_ = nullptr;

  // The agent may be disposing itself from inside one of its own callbacks;
  // defer destruction until the stack unwinds.
  graveyard_.push_back(std::move(agents_[slot]));
  index_.erase(id);
  release_record_slot(slot);
  ++stats_.agents_disposed;
  if (!graveyard_sweep_scheduled_) {
    graveyard_sweep_scheduled_ = true;
    simulator_.schedule_after(sim::SimTime::zero(), [this] {
      graveyard_sweep_scheduled_ = false;
      graveyard_.clear();
    });
  }
}

void AgentSystem::migrate(AgentId id, net::NodeId destination) {
  if (destination >= transport_->node_count()) {
    throw std::out_of_range("AgentSystem::migrate: node out of range");
  }
  const std::uint32_t slot = record_index(id);
  if (slot == kNoRecord) {
    throw std::logic_error("AgentSystem::migrate: unknown agent");
  }
  Slot& record = slots_[slot];
  if (record.state != State::kActive) {
    throw std::logic_error("AgentSystem::migrate: agent already in transit");
  }
  if (host_ != nullptr && host_->shard_of(destination) != shard_index_) {
    extract_and_ship(slot, destination);
    return;
  }

  const net::NodeId source = record.node;
  ++record.generation;
  record.state = State::kInTransit;
  record.serving = false;
  drain_inbox_bouncing(record);
  recycle_inbox(std::move(record.inbox));

  // A mobile service provider leaves its registrations behind.
  unregister_agent_services(source, id);

  record.node = net::kNoNode;
  agents_[slot]->node_ = net::kNoNode;
  ++stats_.migrations_started;
  ship_migration(slot, record.generation, source, destination,
                 agents_[slot]->serialized_size());
}

void AgentSystem::extract_and_ship(std::uint32_t slot,
                                   net::NodeId destination) {
  const AgentId id = slots_[slot].id;
  const net::NodeId source = slots_[slot].node;

  // While the agent is still resident: fail its pending RPCs. Their
  // callbacks capture `this` of the object about to move to another shard's
  // thread, so they must run (or never run) here and now. `departing` makes
  // any `request` the failure continuations issue fail synchronously too —
  // mirroring the disposing path, so retry chains burn their attempts and
  // give up reentrantly — while `send` stays legal for teardown messages.
  slots_[slot].departing = true;
  drop_rpcs_from(id);
  // A failure continuation may (in principle) have disposed the agent; the
  // record slot is then already recycled and there is nothing to ship.
  if (slots_[slot].id != id) return;

  // Re-index after every callback batch: the continuations may install
  // agents, and slab growth reallocates the arrays.
  util::RingBuffer<Message> inbox = std::move(slots_[slot].inbox);
  while (!inbox.empty()) {
    const Message message = inbox.pop_front();
    bounce(message);
  }
  recycle_inbox(std::move(inbox));
  unregister_agent_services(source, id);

  const std::size_t bytes = agents_[slot]->serialized_size();
  ++stats_.migrations_started;
  agents_[slot]->on_extract();

  std::unique_ptr<Agent> agent = std::move(agents_[slot]);
  agent->node_ = net::kNoNode;
  agent->system_ = nullptr;
  index_.erase(id);
  release_record_slot(slot);  // bumps the generation: queued serve events die
  plan_remote_migration(std::move(agent), id, source, destination, bytes);
}

void AgentSystem::plan_remote_migration(std::unique_ptr<Agent> agent,
                                        AgentId id, net::NodeId source,
                                        net::NodeId destination,
                                        std::size_t bytes) {
  // Same RNG draw order as a `transport_->send` transfer. Sharded runs
  // reject fault injection, so the plan normally admits exactly one copy;
  // under a transient fault plan the transfer retries like the local path
  // (reliable transport), keeping the agent alive in the retry closure.
  const net::TransmitPlan plan =
      transport_->plan_transmission(source, destination, bytes);
  if (plan.copies == 0) {
    simulator_.schedule_after(
        config_.migration_retry,
        [this, agent = std::move(agent), id, source, destination,
         bytes]() mutable {
          plan_remote_migration(std::move(agent), id, source, destination,
                                bytes);
        });
    return;
  }
  host_->post_migration(shard_index_, std::move(agent), id, source,
                        destination, simulator_.now() + plan.delay[0]);
}

void AgentSystem::ship_migration(std::uint32_t slot, std::uint32_t generation,
                                 net::NodeId source, net::NodeId destination,
                                 std::size_t bytes) {
  const bool sent = transport_->send(
      source, destination, bytes,
      [this, slot, generation, source, destination] {
        Slot& record = slots_[slot];
        if (record.generation != generation) return;
        // A fault plan may duplicate the transfer; only the first copy
        // installs the agent.
        if (record.state != State::kInTransit) return;
        record.state = State::kActive;
        record.node = destination;
        agents_[slot]->node_ = destination;
        record.inbox = acquire_inbox();
        ++stats_.migrations_completed;
        agents_[slot]->on_arrival(source);
      });
  if (!sent) {
    // Migration rides reliable transport: retry until the fault plan lets
    // it through (a partitioned destination delays, never loses, the agent).
    simulator_.schedule_after(
        config_.migration_retry,
        [this, slot, generation, source, destination, bytes] {
          if (slots_[slot].generation != generation) return;
          ship_migration(slot, generation, source, destination, bytes);
        });
  }
}

void AgentSystem::send(AgentId from, const AgentAddress& to,
                       util::PayloadBox body, std::size_t wire_bytes) {
  const Slot* sender = find_record(from);
  if (sender == nullptr || sender->state != State::kActive) {
    throw std::logic_error("AgentSystem::send: sender not active");
  }
  Message message;
  message.from = from;
  message.from_node = sender->node;
  message.to = to.agent;
  message.wire_bytes = wire_bytes;
  message.body = std::move(body);
  transmit(std::move(message), to.node);
}

void AgentSystem::request(AgentId from, const AgentAddress& to,
                          util::PayloadBox body, std::size_t wire_bytes,
                          RpcCallback callback,
                          std::optional<sim::SimTime> timeout) {
  const Slot* sender = find_record(from);
  if (sender == nullptr || sender->state != State::kActive) {
    throw std::logic_error("AgentSystem::request: sender not active");
  }
  if (sender->disposing || sender->departing) {
    // drop_rpcs_from already ran for this agent, so an RPC registered now
    // would never be dropped and its callback would fire after the agent is
    // destroyed (retry loops reach here when a drop-induced failure resends
    // from inside dispose) — or, for a departing agent, after the object
    // moved to another shard's thread. Fail synchronously while the agent
    // is alive; retry chains then burn their attempts and give up
    // reentrantly.
    ++stats_.rpc_delivery_failures;
    RpcResult result;
    result.status = RpcResult::Status::kDeliveryFailure;
    callback(std::move(result));
    return;
  }
  const net::NodeId from_node = sender->node;
  const std::uint64_t correlation = ++correlation_counter_;

  PendingRpc pending;
  pending.from = from;
  pending.callback = std::move(callback);
  pending.timeout_event = simulator_.schedule_after(
      timeout.value_or(config_.default_rpc_timeout), [this, correlation] {
        PendingRpc* rpc = pending_rpcs_.find(correlation);
        if (rpc == nullptr) return;
        RpcCallback cb = std::move(rpc->callback);
        pending_rpcs_.erase(correlation);
        ++stats_.rpc_timeouts;
        RpcResult result;
        result.status = RpcResult::Status::kTimeout;
        cb(std::move(result));
      });
  pending_rpcs_.emplace(correlation, std::move(pending));

  Message message;
  message.from = from;
  message.from_node = from_node;
  message.to = to.agent;
  message.correlation = correlation;
  message.wire_bytes = wire_bytes;
  message.body = std::move(body);
  transmit(std::move(message), to.node);
}

void AgentSystem::reply(const Message& request, AgentId from,
                        util::PayloadBox body, std::size_t wire_bytes) {
  const Slot* sender = find_record(from);
  if (sender == nullptr || sender->state != State::kActive) {
    throw std::logic_error("AgentSystem::reply: sender not active");
  }
  Message message;
  message.from = from;
  message.from_node = sender->node;
  message.to = request.from;
  message.correlation = request.correlation;
  message.is_reply = true;
  message.wire_bytes = wire_bytes;
  message.body = std::move(body);
  transmit(std::move(message), request.from_node);
}

void AgentSystem::transmit(Message message, net::NodeId to_node) {
  static_assert(sizeof(DeliveryEvent) <= 16, "delivery event must stay tiny");
  static_assert(std::is_trivially_copyable_v<DeliveryEvent>,
                "delivery event must be memcpy-relocatable");
  static_assert(sizeof(BurstEvent) <= 16 &&
                    std::is_trivially_copyable_v<BurstEvent>,
                "burst event must stay tiny and memcpy-relocatable");
  ++stats_.messages_sent;
  if (host_ != nullptr && host_->shard_of(to_node) != shard_index_) {
    // Cross-shard transmit: sample faults and latency on this shard's
    // network (single-writer; draw order is this LP's deterministic event
    // order), then ride the host's cross-LP channel. Bursts never coalesce
    // across shards — each copy is one envelope, ordered at the destination
    // by the engine's (time, src-LP, send-seq) key.
    const net::TransmitPlan remote_plan = transport_->plan_transmission(
        message.from_node, to_node, message.wire_bytes);
    for (int copy = 0; copy < remote_plan.copies; ++copy) {
      const sim::SimTime when = simulator_.now() + remote_plan.delay[copy];
      if (copy + 1 < remote_plan.copies) {
        host_->post_message(shard_index_, to_node, when, Message(message));
      } else {
        host_->post_message(shard_index_, to_node, when, std::move(message));
      }
    }
    return;
  }
  const net::TransmitPlan plan = transport_->plan_transmission(
      message.from_node, to_node, message.wire_bytes);
  if (plan.copies == 0) return;  // swallowed by the fault plan

  const std::uint32_t slot = acquire_slot();
  InFlight& flight = in_flight_[slot];
  flight.message = std::move(message);
  flight.next = kNoSlot;
  flight.remaining = static_cast<std::uint8_t>(plan.copies);

  if (plan.copies == 1) {
    // Coalesce bursts: when this message lands on the same node at the same
    // instant as the open burst AND nothing has been scheduled since that
    // burst's event (so the chained messages' sequence numbers would have
    // been consecutive anyway), append to the chain instead of paying for
    // another simulator event. Both checks are required for exact order
    // preservation; `pending` also guards against appending to a chain
    // whose event is firing right now (its slots are already released).
    const sim::SimTime when = simulator_.now() + plan.delay[0];
    if (open_tail_ != kNoSlot && open_node_ == to_node && open_when_ == when &&
        simulator_.schedule_stamp() == open_stamp_ &&
        simulator_.pending(open_event_)) {
      in_flight_[open_tail_].next = slot;
      open_tail_ = slot;
      return;
    }
    open_event_ = simulator_.schedule_after(plan.delay[0],
                                            BurstEvent{this, slot, to_node});
    open_stamp_ = simulator_.schedule_stamp();
    open_tail_ = slot;
    open_node_ = to_node;
    open_when_ = when;
    return;
  }
  for (int copy = 0; copy < plan.copies; ++copy) {
    simulator_.schedule_after(plan.delay[copy],
                              DeliveryEvent{this, slot, to_node});
  }
}

void AgentSystem::on_delivery(std::uint32_t slot, net::NodeId node) {
  transport_->note_delivered(node);
  // Extract the message (and free the slot) before delivering: the handler
  // may send again and reallocate `in_flight_`.
  InFlight& flight = in_flight_[slot];
  if (flight.remaining > 1) {
    --flight.remaining;
    Message copy = flight.message;  // a duplicated send; keep the original
    deliver(node, std::move(copy));
    return;
  }
  Message message = std::move(flight.message);
  release_slot(slot);
  deliver(node, std::move(message));
}

void AgentSystem::on_burst(std::uint32_t head, net::NodeId node) {
  // Walk the chain in append order (= original per-message event order).
  // Re-index `in_flight_` on every step: a bounced message reenters
  // `transmit`, which may grow the pool or reuse released slots.
  std::uint32_t slot = head;
  while (slot != kNoSlot) {
    const std::uint32_t next = in_flight_[slot].next;
    transport_->note_delivered(node);
    Message& message = in_flight_[slot].message;
    const std::uint32_t target = record_index(message.to);
    if (target != kNoRecord && slots_[target].state == State::kActive &&
        slots_[target].node == node) {
      // `enqueue` runs no agent code, so deliver straight from the slot.
      enqueue(target, std::move(message));
      release_slot(slot);
    } else {
      Message bounced = std::move(message);
      release_slot(slot);
      bounce(bounced);
    }
    slot = next;
  }
}

void AgentSystem::deliver(net::NodeId node, Message message) {
  const std::uint32_t target = record_index(message.to);
  const bool present = target != kNoRecord &&
                       slots_[target].state == State::kActive &&
                       slots_[target].node == node;
  if (!present) {
    bounce(message);
    return;
  }
  enqueue(target, std::move(message));
}

void AgentSystem::enqueue(std::uint32_t slot, Message&& message) {
  Slot& record = slots_[slot];
  const std::size_t capacity_before = record.inbox.capacity();
  record.inbox.push_back(std::move(message));
  if (record.inbox.capacity() != capacity_before) {
    live_inbox_bytes_ +=
        (record.inbox.capacity() - capacity_before) * sizeof(Message);
    note_memory_high_water();
  }
  stats_.peak_inbox_depth =
      std::max(stats_.peak_inbox_depth, record.inbox.size());
  if (!record.serving) {
    record.serving = true;
    const std::uint32_t generation = record.generation;
    simulator_.schedule_after(config_.service_time, [this, slot, generation] {
      serve_next(slot, generation);
    });
  }
}

void AgentSystem::serve_next(std::uint32_t slot, std::uint32_t generation) {
  Slot* record = &slots_[slot];
  if (record->generation != generation || !record->serving ||
      record->inbox.empty()) {
    return;
  }
  Message message = record->inbox.pop_front();
  ++stats_.messages_processed;
  dispatch(*agents_[slot], message);

  // The handler may have installed agents, which can reallocate the slab
  // arrays — re-index (erasure never moves records, so the slot itself is
  // still ours unless the generation moved).
  record = &slots_[slot];
  if (record->generation != generation) return;
  if (record->inbox.empty()) {
    record->serving = false;
  } else {
    simulator_.schedule_after(config_.service_time, [this, slot, generation] {
      serve_next(slot, generation);
    });
  }
}

void AgentSystem::dispatch(Agent& agent, Message& message) {
  if (message.is_reply) {
    RpcResult result;
    result.status = RpcResult::Status::kOk;
    result.reply = std::move(message);
    complete_rpc(result.reply.correlation, std::move(result));
    return;
  }
  if (const auto* failure = message.body_as<DeliveryFailure>()) {
    if (failure->correlation != 0 &&
        pending_rpcs_.contains(failure->correlation)) {
      RpcResult result;
      result.status = RpcResult::Status::kDeliveryFailure;
      ++stats_.rpc_delivery_failures;
      complete_rpc(failure->correlation, std::move(result));
    } else {
      agent.on_delivery_failure(*failure);
    }
    return;
  }
  agent.on_message(message);
}

void AgentSystem::bounce(const Message& message) {
  ++stats_.messages_bounced;
  if (!config_.bounce_undeliverable) return;
  // System messages (bounces themselves) are never bounced back: no loops.
  if (message.from == kNoAgent || message.body.holds<DeliveryFailure>()) {
    return;
  }
  Message notice;
  notice.from = kNoAgent;
  notice.from_node = message.from_node;  // charged as a remote round trip
  notice.to = message.from;
  notice.wire_bytes = 64;
  DeliveryFailure failure;
  failure.attempted = AgentAddress{net::kNoNode, message.to};
  failure.correlation = message.correlation;
  notice.body = failure;
  transmit(std::move(notice), message.from_node);
}

void AgentSystem::complete_rpc(std::uint64_t correlation, RpcResult result) {
  PendingRpc* rpc = pending_rpcs_.find(correlation);
  if (rpc == nullptr) return;  // already timed out or completed
  simulator_.cancel(rpc->timeout_event);
  RpcCallback callback = std::move(rpc->callback);
  pending_rpcs_.erase(correlation);
  callback(std::move(result));
}

void AgentSystem::drop_rpcs_from(AgentId id) {
  // Complete (rather than leak) the requests of a disposing agent: the
  // callbacks are plain closures that may carry continuations beyond the
  // agent itself, and they are written to tolerate the agent being gone.
  std::vector<std::pair<std::uint64_t, RpcCallback>> doomed;
  pending_rpcs_.for_each([&](std::uint64_t correlation, PendingRpc& rpc) {
    if (rpc.from != id) return;
    simulator_.cancel(rpc.timeout_event);
    doomed.emplace_back(correlation, std::move(rpc.callback));
  });
  // Erase before invoking anything: callbacks may issue new RPCs and must
  // not observe (or collide with) the half-dead entries.
  for (const auto& [correlation, callback] : doomed) {
    pending_rpcs_.erase(correlation);
  }
  for (auto& [correlation, callback] : doomed) {
    RpcResult result;
    result.status = RpcResult::Status::kDeliveryFailure;
    ++stats_.rpc_delivery_failures;
    callback(std::move(result));
  }
}

AgentSystem::ServiceKey AgentSystem::service_key(std::string_view name) {
  for (std::size_t i = 0; i < service_names_.size(); ++i) {
    if (service_names_[i] == name) return static_cast<ServiceKey>(i);
  }
  service_names_.emplace_back(name);
  return static_cast<ServiceKey>(service_names_.size() - 1);
}

void AgentSystem::register_service(net::NodeId node, const std::string& name,
                                   AgentId agent) {
  if (node >= services_.size()) {
    throw std::out_of_range("AgentSystem::register_service: node");
  }
  const ServiceKey key = service_key(name);
  auto& local = services_[node];
  const std::size_t capacity_before = local.capacity();
  const auto it = std::lower_bound(
      local.begin(), local.end(), key,
      [](const auto& entry, ServiceKey k) { return entry.first < k; });
  if (it != local.end() && it->first == key) {
    it->second = agent;
  } else {
    local.insert(it, {key, agent});
  }
  service_bytes_ += (local.capacity() - capacity_before) *
                    sizeof(std::pair<ServiceKey, AgentId>);
}

void AgentSystem::unregister_service(net::NodeId node,
                                     const std::string& name) {
  if (node >= services_.size()) {
    throw std::out_of_range("AgentSystem::unregister_service: node");
  }
  const ServiceKey key = service_key(name);
  auto& local = services_[node];
  const auto it = std::lower_bound(
      local.begin(), local.end(), key,
      [](const auto& entry, ServiceKey k) { return entry.first < k; });
  if (it != local.end() && it->first == key) local.erase(it);
}

std::optional<AgentId> AgentSystem::lookup_service(net::NodeId node,
                                                   ServiceKey key) const {
  if (node >= services_.size()) return std::nullopt;
  const auto& local = services_[node];
  const auto it = std::lower_bound(
      local.begin(), local.end(), key,
      [](const auto& entry, ServiceKey k) { return entry.first < k; });
  if (it == local.end() || it->first != key) return std::nullopt;
  return it->second;
}

std::optional<AgentId> AgentSystem::lookup_service(
    net::NodeId node, const std::string& name) const {
  for (std::size_t i = 0; i < service_names_.size(); ++i) {
    if (service_names_[i] == name) {
      return lookup_service(node, static_cast<ServiceKey>(i));
    }
  }
  return std::nullopt;  // never registered anywhere
}

void AgentSystem::unregister_agent_services(net::NodeId node, AgentId id) {
  if (node >= services_.size()) return;
  auto& local = services_[node];
  std::erase_if(local, [id](const auto& entry) { return entry.second == id; });
}

bool AgentSystem::hosts(net::NodeId node, AgentId agent) const noexcept {
  const Slot* record = find_record(agent);
  return record != nullptr && record->state == State::kActive &&
         record->node == node;
}

bool AgentSystem::exists(AgentId id) const noexcept {
  return index_.contains(id);
}

bool AgentSystem::in_transit(AgentId id) const noexcept {
  const Slot* record = find_record(id);
  return record != nullptr && record->state == State::kInTransit;
}

std::optional<net::NodeId> AgentSystem::node_of(AgentId id) const noexcept {
  const Slot* record = find_record(id);
  if (record == nullptr || record->state != State::kActive) {
    return std::nullopt;
  }
  return record->node;
}

Agent* AgentSystem::find(AgentId id) noexcept {
  const std::uint32_t slot = record_index(id);
  return slot == kNoRecord ? nullptr : agents_[slot].get();
}

std::size_t AgentSystem::inbox_depth(AgentId id) const noexcept {
  const Slot* record = find_record(id);
  return record == nullptr ? 0 : record->inbox.size();
}

MemoryBreakdown AgentSystem::memory_breakdown() const noexcept {
  MemoryBreakdown memory;
  // Slot sizes count key + value, the unit FlatMap actually allocates.
  memory.agent_records =
      slots_.capacity() * sizeof(Slot) +
      agents_.capacity() * sizeof(std::unique_ptr<Agent>) +
      free_slots_.capacity() * sizeof(std::uint32_t) +
      index_.capacity() * (sizeof(AgentId) + sizeof(std::uint32_t));
  memory.inboxes = live_inbox_bytes_ + pooled_inbox_bytes_;
  memory.rpc_table =
      pending_rpcs_.capacity() * (sizeof(std::uint64_t) + sizeof(PendingRpc));
  memory.in_flight = in_flight_.capacity() * sizeof(InFlight);
  memory.services =
      services_.capacity() * sizeof(services_[0]) + service_bytes_;
  return memory;
}

std::size_t AgentSystem::estimated_resident_bytes() const noexcept {
  return memory_breakdown().total();
}

void AgentSystem::note_memory_high_water() noexcept {
  stats_.peak_resident_bytes =
      std::max(stats_.peak_resident_bytes, estimated_resident_bytes());
}

}  // namespace agentloc::platform
