#pragma once

#include <cstddef>

#include "sim/time.hpp"

namespace agentloc::core {

/// Opt-in per-node location caching (DESIGN.md §12). Every knob only takes
/// effect when `enabled` is set; the default-off state leaves the locate
/// path, the committed bench baselines, and the paper-faithful figures
/// byte-identical to a build without the cache.
struct LocationCacheConfig {
  /// Master switch: give every LHAgent a `LocationCache` and consult it on
  /// the locate path.
  bool enabled = false;

  /// Cache capacity in bindings per node (rounded up to a power of two).
  std::size_t capacity = 1024;

  /// Sim-time bound on a binding's age; expired entries count as misses.
  sim::SimTime ttl = sim::SimTime::seconds(2);

  /// Admit "known absent" bindings when the authority answers kUnknown, so
  /// repeat queries for a missing agent skip the IAgent inside the TTL.
  /// Off by default: a negative hit short-circuits the locate without a
  /// verify probe, so (unlike positive hits) it can answer "not found" for
  /// an agent that registered inside the TTL window.
  bool negative_entries = false;

  /// On a positive hit, verify at the cached node directly (one probe RPC to
  /// that node's LHAgent) instead of asking the responsible IAgent; a stale
  /// binding falls back to the authoritative path. Disabling this reduces
  /// the cache to a passive store (bindings maintained and instrumented, no
  /// locate short-circuit) — the ablation's "cache without jump" arm.
  bool optimistic_jump = true;
};

/// Tunables of the hash-based location mechanism. Defaults reproduce the
/// paper's setting (Tmax/Tmin reconstructed as 50/5 msg/s — DESIGN.md §5).
struct MechanismConfig {
  /// Split an IAgent whose request rate exceeds this (msg/s; paper §4.1).
  double t_max = 50.0;

  /// Merge an IAgent whose request rate falls below this (msg/s; §4.2).
  double t_min = 5.0;

  /// Length of the request-rate measurement window.
  sim::SimTime stats_window = sim::SimTime::seconds(2);

  /// Minimum time between rehash requests from the same IAgent, and the
  /// minimum age before a fresh IAgent may ask to merge — hysteresis on top
  /// of the Tmax/Tmin band.
  sim::SimTime rehash_cooldown = sim::SimTime::seconds(4);

  /// A candidate split is "even" when each side keeps at least this fraction
  /// of the load (paper §4.1's "even split", made concrete).
  double even_tolerance = 0.25;

  /// Largest m tried by a simple split before settling for the best seen.
  std::size_t max_split_bits = 4;

  /// After a responsibility change, compatible-but-unknown lookups answer
  /// kTransient (handoff in flight) for this long.
  sim::SimTime transient_grace = sim::SimTime::millis(300);

  /// Client-side bound on locate retries (refresh + resend cycles).
  int max_locate_retries = 5;

  /// Client-side delay before retrying a kTransient locate.
  sim::SimTime transient_retry_delay = sim::SimTime::millis(5);

  /// Client-side RPC deadline for location traffic. Deliberately generous:
  /// a request to an overloaded tracker should *wait* in its queue (that
  /// queueing delay is the phenomenon the paper measures), not time out and
  /// retry — retries amplify exactly the overload they react to.
  sim::SimTime rpc_timeout = sim::SimTime::seconds(2);

  /// HAgent-side deadline for a rehash to finish before the coordinator
  /// unlocks itself anyway.
  sim::SimTime rehash_timeout = sim::SimTime::seconds(2);

  /// Run a backup HAgent that replicates the primary copy op-by-op and can
  /// be promoted when the primary dies (the paper's §7 fault-tolerance
  /// extension: "the HAgent that keeps this copy [is] a vulnerability
  /// point").
  bool hagent_replication = false;

  /// Consecutive coordinator failures an LHAgent tolerates before failing
  /// over to the next coordinator and requesting its promotion.
  int failover_threshold = 2;

  /// Serve hash-copy refreshes as operation deltas when the coordinator's
  /// journal still covers the requester's version (falls back to full
  /// snapshots otherwise). Extension over the paper's whole-copy refresh.
  bool delta_refresh = true;

  /// How many tree operations the coordinator's journal retains.
  std::size_t journal_capacity = 512;

  /// Encoded-size bound on the same journal (0 = op-count bound only):
  /// crossing it truncates the oldest ops in one batch, so churn storms
  /// cannot grow the primary's delta memory without limit. Refreshers older
  /// than the truncation point fall back to full snapshots.
  std::size_t journal_max_bytes = 64 * 1024;

  /// Largest number of entries shipped in one HandoffTransfer message;
  /// bigger tables move as a chain of batches (final_batch marks the last).
  std::size_t max_handoff_batch = 64;

  /// Most watchers an IAgent keeps per tracked agent (guaranteed-discovery
  /// extension); further WatchRequests are refused with kTransient.
  std::size_t max_watchers_per_agent = 8;

  /// Client-side deadline for a watch to fire before reporting failure.
  sim::SimTime watch_timeout = sim::SimTime::seconds(10);

  /// Opt-in update coalescing (DESIGN.md §10): movers hand their location
  /// reports to the co-located LHAgent, which flushes them to each
  /// responsible IAgent as one `BatchedUpdate` per flush window. Newest-seq
  /// wins inside a batch exactly as it does at the IAgent's table, so the
  /// mechanism's semantics are unchanged — only the message count drops.
  bool update_batching = false;

  /// Longest a pending update waits in the batcher before a flush. The
  /// ablation (bench_ablation_batching) shows staleness is essentially flat
  /// up to 200 ms at LAN dwell times, so the default leans toward savings.
  sim::SimTime batch_flush_interval = sim::SimTime::millis(100);

  /// A flush triggers early once this many distinct agents are pending.
  std::size_t batch_max_entries = 32;

  /// Batch-first at scale: tracked-population size at or above which the
  /// experiment harness turns `update_batching` on and pre-sizes the scheme
  /// tables for the population (0 disables auto-scaling). Per-update wire
  /// messages dominate at million-agent populations; below the threshold
  /// nothing changes, so small fixed-seed baselines stay bit-identical.
  std::size_t batch_auto_threshold = 10000;

  /// Pre-split the primary copy to this many IAgents (rounded up to a power
  /// of two) at bootstrap, before any traffic. With one initial IAgent a
  /// million registrations funnel through one inbox until enough splits
  /// complete; pre-splitting starts the run at the capacity the population
  /// needs. 0 or 1 keeps the paper's single-IAgent bootstrap.
  std::size_t initial_iagents = 1;

  /// Per-node location caching with staleness-safe optimistic locates
  /// (DESIGN.md §12). Default off.
  LocationCacheConfig location_cache;

  /// Collapse concurrent in-flight LocateRequests for the same target from
  /// the same node into one IAgent RPC whose reply fans out to every waiter
  /// (DESIGN.md §12). Default off: coalescing drops wire messages, which
  /// perturbs fixed-seed trajectories the committed baselines pin down.
  bool locate_singleflight = false;

  /// Paper §7 extension: IAgents periodically migrate toward the node
  /// hosting the plurality of the agents they serve.
  bool locality_migration = false;

  /// Fraction of an IAgent's entries that must sit on one node before a
  /// locality migration is worthwhile.
  double locality_threshold = 0.5;
};

}  // namespace agentloc::core
