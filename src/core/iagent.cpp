#include "core/iagent.hpp"

#include <algorithm>
#include <utility>

#include "platform/agent_system.hpp"
#include "util/logging.hpp"

namespace agentloc::core {

IAgent::IAgent(const MechanismConfig& config, platform::AgentAddress hagent)
    : IAgent(config, std::vector<platform::AgentAddress>{hagent}) {}

IAgent::IAgent(const MechanismConfig& config,
               std::vector<platform::AgentAddress> coordinators)
    : config_(config),
      coordinators_(std::move(coordinators)),
      hagent_(coordinators_.at(0)),
      window_(config.stats_window) {}

void IAgent::on_delivery_failure(const platform::DeliveryFailure& failure) {
  // The only agent an IAgent sends to besides clients (whose bounces carry
  // their own ids) is its coordinator. A bounced coordinator message means
  // the HAgent died: fail over to the next coordinator and ask it to take
  // over (§7 fault-tolerance extension).
  if (failure.attempted.agent != hagent_.agent ||
      coordinators_.size() < 2) {
    return;
  }
  coordinator_index_ = (coordinator_index_ + 1) % coordinators_.size();
  hagent_ = coordinators_[coordinator_index_];
  AGENTLOC_LOG(kWarn, "iagent")
      << "coordinator unreachable; failing over to agent " << hagent_.agent;
  system().send(id(), hagent_, PromoteRequest{}, PromoteRequest::kWireBytes);
}

void IAgent::on_start() {
  created_at_ = system().now();
  cooldown_until_ = created_at_ + config_.rehash_cooldown;
  window_timer_ = std::make_unique<sim::PeriodicTimer>(
      system().simulator(), config_.stats_window, [this] { roll_window(); });
  window_timer_->start();
}

void IAgent::on_extract() {
  // Stop — don't destroy — the timer: a locality migration is triggered
  // from inside its own tick, and the tick closure is a member of the timer
  // object. The stopped timer still references the source shard's simulator
  // (which outlives the run); on_shard_transfer replaces it.
  window_timer_->stop();
}

void IAgent::on_shard_transfer() {
  window_timer_ = std::make_unique<sim::PeriodicTimer>(
      system().simulator(), config_.stats_window, [this] { roll_window(); });
  window_timer_->start();
}

void IAgent::on_arrival(net::NodeId from_node) {
  (void)from_node;
  // Paper §7 locality extension: report the new location so the primary
  // copy (and, lazily, the secondary copies) can redirect clients.
  system().send(id(), hagent_, IAgentMoved{id(), node()},
                IAgentMoved::kWireBytes);
}

void IAgent::on_message(const platform::Message& message) {
  if (const auto* request = message.body_as<RegisterRequest>()) {
    handle_register(message, *request);
  } else if (const auto* request = message.body_as<UpdateRequest>()) {
    handle_update(message, *request);
  } else if (const auto* batch = message.body_as<BatchedUpdate>()) {
    handle_batched_update(message, *batch);
  } else if (const auto* request = message.body_as<LocateRequest>()) {
    handle_locate(message, *request);
  } else if (const auto* request = message.body_as<WatchRequest>()) {
    handle_watch(message, *request);
  } else if (const auto* request = message.body_as<DeregisterRequest>()) {
    if (!retiring_) table_.remove(request->agent, request->seq);
  } else if (const auto* update = message.body_as<ResponsibilityUpdate>()) {
    handle_responsibility(*update);
  } else if (const auto* transfer = message.body_as<HandoffTransfer>()) {
    handle_handoff(message, *transfer);
  } else if (const auto* order = message.body_as<RetireOrder>()) {
    handle_retire(*order);
  }
}

void IAgent::handle_register(const platform::Message& message,
                             const RegisterRequest& request) {
  ++stats_.registers;
  window_.record(request.entry.agent);
  if (retiring_ || !responsible_for(request.entry.agent)) {
    ++stats_.not_responsible_replies;
    system().reply(message, id(), UpdateAck{false, hash_version_},
                   UpdateAck::kWireBytes);
    return;
  }
  table_.apply(request.entry);
  system().reply(message, id(), UpdateAck{true, hash_version_},
                 UpdateAck::kWireBytes);
}

void IAgent::handle_update(const platform::Message& message,
                           const UpdateRequest& request) {
  ++stats_.updates;
  window_.record(request.entry.agent);
  if (retiring_ || !responsible_for(request.entry.agent)) {
    // Updates are one-way; the error path gets a best-effort notice so the
    // sender refreshes its hash copy and resends (paper §4.3 trigger (i)).
    ++stats_.not_responsible_replies;
    system().send(id(),
                  platform::AgentAddress{message.from_node, message.from},
                  NotResponsibleNotice{request.entry.agent, hash_version_},
                  NotResponsibleNotice::kWireBytes);
    return;
  }
  // Upsert: an update racing ahead of a handoff batch re-creates the entry
  // at the new owner, so handoff races self-heal.
  if (table_.apply(request.entry)) fire_watchers(request.entry);
}

void IAgent::handle_batched_update(const platform::Message& message,
                                   const BatchedUpdate& batch) {
  ++stats_.batched_updates;
  stats_.updates += batch.entries.size();
  // Entries this IAgent no longer answers for go back to the sending
  // LHAgent in one nack (the batched analogue of NotResponsibleNotice);
  // responsible entries apply under the usual newest-seq-wins rule, and
  // each one still counts toward the load window — batching must not hide
  // load from the Tmax/Tmin split logic.
  BatchedUpdateNack nack;
  for (const LocationEntry& entry : batch.entries) {
    window_.record(entry.agent);
    if (retiring_ || !responsible_for(entry.agent)) {
      ++stats_.not_responsible_replies;
      nack.entries.push_back(entry);
      continue;
    }
    if (table_.apply(entry)) fire_watchers(entry);
  }
  if (!nack.entries.empty()) {
    nack.version_hint = hash_version_;
    const std::size_t bytes = nack.wire_bytes();
    system().send(id(),
                  platform::AgentAddress{message.from_node, message.from},
                  std::move(nack), bytes);
  }
}

void IAgent::handle_watch(const platform::Message& message,
                          const WatchRequest& request) {
  window_.record(request.target);
  LocateReply ack;
  ack.version_hint = hash_version_;
  if (retiring_ || !responsible_for(request.target)) {
    ++stats_.not_responsible_replies;
    ack.status = LocateStatus::kNotResponsible;
  } else {
    auto& list = watchers_[request.target];
    if (list.size() >= config_.max_watchers_per_agent) {
      ++stats_.watches_refused;
      ack.status = LocateStatus::kTransient;  // try again later
    } else {
      ++stats_.watches_armed;
      list.push_back(
          platform::AgentAddress{message.from_node, message.from});
      if (const auto entry = table_.find(request.target)) {
        ack.status = LocateStatus::kFound;
        ack.node = entry->node;
        ack.seq = entry->seq;
      } else {
        ack.status = LocateStatus::kUnknown;  // armed; will fire on arrival
      }
    }
  }
  system().reply(message, id(), ack, LocateReply::kWireBytes);
}

void IAgent::fire_watchers(const LocationEntry& entry) {
  auto* found = watchers_.find(entry.agent);
  if (found == nullptr) return;
  std::vector<platform::AgentAddress> list = std::move(*found);
  watchers_.erase(entry.agent);
  for (const platform::AgentAddress& watcher : list) {
    ++stats_.watches_fired;
    system().send(id(), watcher, WatchNotify{entry},
                  WatchNotify::kWireBytes);
  }
}

void IAgent::handle_locate(const platform::Message& message,
                           const LocateRequest& request) {
  ++stats_.locates;
  window_.record(request.target);
  LocateReply reply;
  reply.version_hint = hash_version_;
  if (retiring_ || !responsible_for(request.target)) {
    ++stats_.not_responsible_replies;
    reply.status = LocateStatus::kNotResponsible;
  } else if (const auto entry = table_.find(request.target)) {
    reply.status = LocateStatus::kFound;
    reply.node = entry->node;
    reply.seq = entry->seq;
  } else if (system().now() < transient_until_) {
    ++stats_.transient_replies;
    reply.status = LocateStatus::kTransient;
  } else {
    ++stats_.unknown_replies;
    reply.status = LocateStatus::kUnknown;
  }
  system().reply(message, id(), reply, LocateReply::kWireBytes);
}

void IAgent::handle_responsibility(const ResponsibilityUpdate& update) {
  if (update.version < hash_version_) return;  // stale coordinator message
  hash_version_ = update.version;
  predicate_ = update.predicate;
  // Recompile at the receiving end: predicates travel by their wire form
  // (valid_bits); the compiled (mask, value) pair is a local cache.
  predicate_.compile();
  transient_until_ = system().now() + config_.transient_grace;

  if (!update.has_transfer) {
    system().send(id(), hagent_, RehashDone{hash_version_},
                  RehashDone::kWireBytes);
    return;
  }
  Predicate transfer = update.transfer_predicate;
  transfer.compile();
  auto entries = table_.extract_matching(transfer);
  const std::uint64_t version = hash_version_;
  push_entries(update.transfer_to, std::move(entries), [this, version] {
    system().send(id(), hagent_, RehashDone{version},
                  RehashDone::kWireBytes);
  });
}

void IAgent::handle_handoff(const platform::Message& message,
                            const HandoffTransfer& transfer) {
  ++stats_.handoff_batches_in;
  table_.reserve(table_.size() + transfer.entries.size());
  for (const LocationEntry& entry : transfer.entries) {
    if (table_.apply(entry)) ++stats_.handoff_entries_in;
  }
  system().reply(message, id(), HandoffAck{}, HandoffAck::kWireBytes);
}

void IAgent::handle_retire(const RetireOrder& order) {
  if (retiring_) return;
  retiring_ = true;
  retire_version_ = order.version;
  window_timer_->stop();
  watchers_.clear();  // watchers re-arm via their client-side timeout

  // Partition the table across the routes (each entry matches exactly one
  // leaf predicate of the new hash function) in a single pass. Recompile the
  // route predicates first — they arrive in wire form.
  std::vector<Predicate> route_predicates(order.routes.size());
  for (std::size_t r = 0; r < order.routes.size(); ++r) {
    route_predicates[r] = order.routes[r].predicate;
    route_predicates[r].compile();
  }
  auto batches = table_.drain_partition(route_predicates);

  retire_outstanding_ = 0;
  for (std::size_t r = 0; r < order.routes.size(); ++r) {
    if (batches[r].empty()) continue;
    ++retire_outstanding_;
    push_entries(order.routes[r].target, std::move(batches[r]), [this] {
      if (--retire_outstanding_ == 0) finish_retirement();
    });
  }
  if (retire_outstanding_ == 0) finish_retirement();
}

void IAgent::finish_retirement() {
  system().send(id(), hagent_, RehashDone{retire_version_},
                RehashDone::kWireBytes);
  system().dispose(id());
}

void IAgent::push_entries(platform::AgentAddress target,
                          std::vector<LocationEntry> entries,
                          std::function<void()> done) {
  const std::size_t batch_size =
      config_.max_handoff_batch == 0 ? 64 : config_.max_handoff_batch;
  if (entries.size() <= batch_size) {
    push_batch(target, std::move(entries), true, 3, std::move(done));
    return;
  }
  // Ship the head batch, then recurse on the tail once it is acked: the
  // chain keeps at most one batch in flight, so a slow receiver applies
  // back-pressure instead of absorbing a burst.
  std::vector<LocationEntry> head(entries.begin(),
                                  entries.begin() +
                                      static_cast<std::ptrdiff_t>(batch_size));
  std::vector<LocationEntry> tail(entries.begin() +
                                      static_cast<std::ptrdiff_t>(batch_size),
                                  entries.end());
  push_batch(target, std::move(head), false, 3,
             [this, target, tail = std::move(tail),
              done = std::move(done)]() mutable {
               push_entries(target, std::move(tail), std::move(done));
             });
}

void IAgent::push_batch(platform::AgentAddress target,
                        std::vector<LocationEntry> entries,
                        bool final_batch, int attempts_left,
                        std::function<void()> done) {
  ++stats_.handoff_batches_out;
  stats_.handoff_entries_out += entries.size();
  HandoffTransfer transfer;
  transfer.entries = entries;
  transfer.final_batch = final_batch;
  const std::size_t bytes = transfer.wire_bytes();
  system().request(
      id(), target, std::move(transfer), bytes,
      [this, target, entries = std::move(entries), final_batch, attempts_left,
       done = std::move(done)](platform::RpcResult result) mutable {
        if (result.ok() || attempts_left <= 0) {
          if (!result.ok()) {
            AGENTLOC_LOG(kError, "iagent")
                << "handoff to agent " << target.agent << " abandoned; "
                << entries.size() << " entries rely on update self-healing";
          }
          done();
          return;
        }
        // Re-push; duplicates are sequence-checked at the receiver. The
        // receiver may also have migrated: re-resolve through the platform's
        // bounce by simply retrying the same address (the HAgent's grant is
        // fresher than any migration at this point).
        push_batch(target, std::move(entries), final_batch,
                   attempts_left - 1, std::move(done));
      },
      config_.rpc_timeout);
}

void IAgent::roll_window() {
  // The timer is simulator-level and keeps ticking through migrations; an
  // in-transit agent cannot send or migrate, so skip the roll entirely.
  if (node() == net::kNoNode) return;
  window_.roll();
  maybe_request_rehash();
  if (config_.locality_migration) consider_locality_migration();
}

void IAgent::maybe_request_rehash() {
  if (retiring_) return;
  const sim::SimTime now = system().now();
  if (now < cooldown_until_) return;
  const double rate = window_.rate();
  if (rate > config_.t_max) {
    ++stats_.split_requests;
    cooldown_until_ = now + config_.rehash_cooldown;
    SplitRequest request;
    request.rate = rate;
    request.loads = window_.loads();
    const std::size_t bytes = request.wire_bytes();
    system().send(id(), hagent_, std::move(request), bytes);
  } else if (rate < config_.t_min) {
    ++stats_.merge_requests;
    cooldown_until_ = now + config_.rehash_cooldown;
    system().send(id(), hagent_, MergeRequest{rate, table_.size()},
                  MergeRequest::kWireBytes);
  }
}

void IAgent::consider_locality_migration() {
  if (retiring_ || table_.size() == 0) return;
  // Node-indexed histogram instead of a hash map: node ids are dense and
  // small, so this is one cache-friendly pass, and ties break toward the
  // lowest node id instead of whatever order the hash table walks.
  per_node_counts_.assign(system().node_count(), 0);
  table_.for_each(
      [&](const LocationEntry& entry) { ++per_node_counts_[entry.node]; });
  net::NodeId best = node();
  std::size_t best_count = 0;
  for (net::NodeId where = 0; where < per_node_counts_.size(); ++where) {
    if (per_node_counts_[where] > best_count) {
      best = where;
      best_count = per_node_counts_[where];
    }
  }
  const double fraction =
      static_cast<double>(best_count) / static_cast<double>(table_.size());
  if (best != node() && fraction >= config_.locality_threshold) {
    ++stats_.locality_migrations;
    system().migrate(id(), best);
  }
}

}  // namespace agentloc::core
