#include "core/lhagent.hpp"

#include "hashtree/delta.hpp"

#include <utility>

#include "platform/agent_system.hpp"
#include "util/bytebuffer.hpp"
#include "util/logging.hpp"

namespace agentloc::core {

LHAgent::LHAgent(platform::AgentAddress hagent, hashtree::HashTree initial)
    : LHAgent(std::vector<platform::AgentAddress>{hagent}, std::move(initial),
              2) {}

LHAgent::LHAgent(std::vector<platform::AgentAddress> coordinators,
                 hashtree::HashTree initial, int failover_threshold)
    : coordinators_(std::move(coordinators)),
      hagent_(coordinators_.at(0)),
      failover_threshold_(failover_threshold),
      tree_(std::move(initial)) {}

void LHAgent::note_pull_failure() {
  ++stats_.refresh_failures;
  if (coordinators_.size() < 2 ||
      ++consecutive_failures_ < failover_threshold_) {
    return;
  }
  consecutive_failures_ = 0;
  coordinator_index_ = (coordinator_index_ + 1) % coordinators_.size();
  hagent_ = coordinators_[coordinator_index_];
  ++stats_.failovers;
  AGENTLOC_LOG(kWarn, "lhagent")
      << "coordinator unreachable; failing over to agent " << hagent_.agent;
  system().send(id(), hagent_, PromoteRequest{}, PromoteRequest::kWireBytes);
}

void LHAgent::on_start() {
  system().register_service(node(), "lhagent", id());
}

void LHAgent::on_message(const platform::Message& message) {
  if (const auto* probe = message.body_as<LocationProbeRequest>()) {
    // Optimistic-locate verification (DESIGN.md §12): answer from this
    // node's resident table — node-local information, no communication.
    ++stats_.probes_served;
    system().reply(message, id(),
                   LocationProbeReply{system().hosts(node(), probe->target)},
                   LocationProbeReply::kWireBytes);
    return;
  }
  if (const auto* nack = message.body_as<BatchedUpdateNack>()) {
    // A flushed batch reached an IAgent that no longer serves (some of)
    // its entries: the batched analogue of paper §4.3 trigger (i). Refresh
    // the copy, then re-enqueue so the next flush re-resolves them.
    ++stats_.update_nacks;
    std::vector<LocationEntry> entries = nack->entries;
    refresh([this, entries = std::move(entries)] {
      if (batcher_ != nullptr) batcher_->requeue(entries);
    });
  }
}

void LHAgent::on_delivery_failure(const platform::DeliveryFailure& failure) {
  (void)failure;
  if (batcher_ == nullptr) return;  // nothing batched could have bounced
  // A batch chased an IAgent that migrated or retired. Refresh the copy;
  // the lost entries self-heal on each mover's next report, exactly like a
  // lost one-way UpdateRequest.
  ++stats_.batch_bounces;
  refresh([] {});
}

void LHAgent::enable_update_batching(sim::SimTime flush_interval,
                                     std::size_t max_entries) {
  batcher_ = std::make_unique<UpdateBatcher>(*this, system(), flush_interval,
                                             max_entries);
}

void LHAgent::enable_location_cache(const LocationCacheConfig& config) {
  cache_ = std::make_unique<LocationCache>(config.capacity, config.ttl,
                                           config.negative_entries);
}

void LHAgent::cache_store(const LocationEntry& entry) {
  if (cache_ != nullptr) cache_->store(entry, system().now());
}

void LHAgent::cache_invalidate(platform::AgentId agent) {
  if (cache_ != nullptr) cache_->invalidate(agent);
}

void LHAgent::enqueue_update(const LocationEntry& entry) {
  // A co-located mover just reported from this node: its binding is the
  // freshest information the node will ever see — deposit it for free.
  cache_store(entry);
  if (batcher_ != nullptr) {
    batcher_->enqueue(entry);
    return;
  }
  // Batching not enabled: behave like the classic path, one message per
  // report, so callers need not special-case the configuration.
  system().send(id(), resolve(entry.agent), UpdateRequest{entry},
                UpdateRequest::kWireBytes);
}

platform::AgentAddress LHAgent::resolve(platform::AgentId agent) {
  ++stats_.resolves;
  const auto target = tree_.lookup_id(agent);
  return platform::AgentAddress{target.location, target.iagent};
}

void LHAgent::refresh(std::function<void()> done) {
  waiters_.push_back(std::move(done));
  if (pull_in_flight_) {
    ++stats_.refreshes_coalesced;
    return;
  }
  pull_in_flight_ = true;
  ++stats_.refreshes_requested;
  pull(/*force_full=*/false);
}

void LHAgent::pull(bool force_full) {
  system().request(
      id(), hagent_, HashPullRequest{tree_.version(), force_full},
      HashPullRequest::kWireBytes, [this](platform::RpcResult result) {
        if (!result.ok()) {
          note_pull_failure();
          finish_pull();
          return;
        }
        const auto* reply = result.reply.body_as<HashPullReply>();
        if (reply == nullptr) {
          note_pull_failure();
          finish_pull();
          return;
        }
        consecutive_failures_ = 0;
        try {
          util::ByteReader reader(reply->payload);
          if (reply->is_delta) {
            const auto delta = hashtree::TreeDelta::deserialize(reader);
            delta.apply_to(tree_);
            ++stats_.delta_refreshes;
          } else {
            hashtree::HashTree fresh =
                hashtree::HashTree::deserialize(reader);
            if (fresh.version() >= tree_.version()) {
              tree_ = std::move(fresh);
            }
          }
          ++stats_.refreshes_completed;
          finish_pull();
        } catch (const std::exception& error) {
          if (reply->is_delta) {
            // A delta that no longer lines up with our copy (e.g. a lost
            // earlier refresh): fall back to a full snapshot once.
            ++stats_.delta_fallbacks;
            pull(/*force_full=*/true);
            return;
          }
          ++stats_.refresh_failures;
          AGENTLOC_LOG(kError, "lhagent")
              << "bad hash snapshot: " << error.what();
          finish_pull();
        }
      });
}

void LHAgent::finish_pull() {
  pull_in_flight_ = false;
  // Run the callbacks even on failure; clients retry end-to-end and a
  // subsequent wrong-IAgent bounce will trigger another refresh.
  std::vector<std::function<void()>> pending;
  pending.swap(waiters_);
  for (auto& waiter : pending) waiter();
}

}  // namespace agentloc::core
