#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "core/protocol.hpp"
#include "hashtree/tree.hpp"
#include "platform/agent.hpp"

namespace agentloc::core {

struct LHAgentStats {
  std::uint64_t resolves = 0;
  std::uint64_t refreshes_requested = 0;
  std::uint64_t refreshes_completed = 0;
  std::uint64_t refreshes_coalesced = 0;
  std::uint64_t refresh_failures = 0;
  std::uint64_t delta_refreshes = 0;
  std::uint64_t delta_fallbacks = 0;  ///< delta failed; re-pulled full
  std::uint64_t failovers = 0;        ///< switched to another coordinator
};

/// Local Hash Agent (paper §2.2): the stationary per-node agent holding a
/// *secondary copy* of the hash function.
///
/// Agents co-located with an LHAgent resolve through a direct call —
/// same-node IPC is orders of magnitude cheaper than any network hop and
/// identical for every scheme, so it is not separately modelled (DESIGN.md
/// §2). The copy refreshes lazily (paper §4.3): when a client is told
/// "not responsible" (or cannot reach an IAgent at its recorded node), it
/// calls `refresh`, which pulls the primary copy from the HAgent. Concurrent
/// refresh requests coalesce into one pull.
class LHAgent : public platform::Agent {
 public:
  /// `initial` is the bootstrap copy of the hash function (white-box setup
  /// shortcut; every later refresh goes through messages).
  LHAgent(platform::AgentAddress hagent, hashtree::HashTree initial);

  /// With coordinator failover (§7 fault-tolerance extension): after
  /// `failover_threshold` consecutive pull failures, rotate to the next
  /// coordinator and ask it to promote itself.
  LHAgent(std::vector<platform::AgentAddress> coordinators,
          hashtree::HashTree initial, int failover_threshold);

  std::string kind() const override { return "lhagent"; }

  void on_start() override;

  /// Map an agent id to (believed) responsible IAgent and its (believed)
  /// node. Pure local computation on the secondary copy.
  platform::AgentAddress resolve(platform::AgentId agent);

  std::uint64_t version() const noexcept { return tree_.version(); }
  std::size_t known_iagents() const noexcept { return tree_.leaf_count(); }
  const LHAgentStats& stats() const noexcept { return stats_; }
  const hashtree::HashTree& tree() const noexcept { return tree_; }

  /// Pull the primary copy from the HAgent, then run `done` (also on
  /// failure — the caller retries end-to-end). Coalesces concurrent calls.
  void refresh(std::function<void()> done);

 private:
  void pull(bool force_full);
  void finish_pull();
  void note_pull_failure();

  std::vector<platform::AgentAddress> coordinators_;
  std::size_t coordinator_index_ = 0;
  platform::AgentAddress hagent_;  ///< current coordinator
  int failover_threshold_ = 2;
  int consecutive_failures_ = 0;
  hashtree::HashTree tree_;
  bool pull_in_flight_ = false;
  std::vector<std::function<void()>> waiters_;
  LHAgentStats stats_;
};

}  // namespace agentloc::core
