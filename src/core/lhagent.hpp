#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/config.hpp"
#include "core/location_cache.hpp"
#include "core/protocol.hpp"
#include "core/update_batcher.hpp"
#include "hashtree/tree.hpp"
#include "platform/agent.hpp"

namespace agentloc::core {

struct LHAgentStats {
  std::uint64_t resolves = 0;
  std::uint64_t refreshes_requested = 0;
  std::uint64_t refreshes_completed = 0;
  std::uint64_t refreshes_coalesced = 0;
  std::uint64_t refresh_failures = 0;
  std::uint64_t delta_refreshes = 0;
  std::uint64_t delta_fallbacks = 0;  ///< delta failed; re-pulled full
  std::uint64_t failovers = 0;        ///< switched to another coordinator
  std::uint64_t update_nacks = 0;     ///< BatchedUpdateNacks received
  std::uint64_t batch_bounces = 0;    ///< BatchedUpdates that bounced
  std::uint64_t probes_served = 0;    ///< LocationProbeRequests answered
};

/// Local Hash Agent (paper §2.2): the stationary per-node agent holding a
/// *secondary copy* of the hash function.
///
/// Agents co-located with an LHAgent resolve through a direct call —
/// same-node IPC is orders of magnitude cheaper than any network hop and
/// identical for every scheme, so it is not separately modelled (DESIGN.md
/// §2). The copy refreshes lazily (paper §4.3): when a client is told
/// "not responsible" (or cannot reach an IAgent at its recorded node), it
/// calls `refresh`, which pulls the primary copy from the HAgent. Concurrent
/// refresh requests coalesce into one pull.
class LHAgent : public platform::Agent {
 public:
  /// `initial` is the bootstrap copy of the hash function (white-box setup
  /// shortcut; every later refresh goes through messages).
  LHAgent(platform::AgentAddress hagent, hashtree::HashTree initial);

  /// With coordinator failover (§7 fault-tolerance extension): after
  /// `failover_threshold` consecutive pull failures, rotate to the next
  /// coordinator and ask it to promote itself.
  LHAgent(std::vector<platform::AgentAddress> coordinators,
          hashtree::HashTree initial, int failover_threshold);

  std::string kind() const override { return "lhagent"; }

  void on_start() override;
  void on_message(const platform::Message& message) override;
  void on_delivery_failure(const platform::DeliveryFailure& failure) override;

  /// Map an agent id to (believed) responsible IAgent and its (believed)
  /// node. Pure local computation on the secondary copy.
  platform::AgentAddress resolve(platform::AgentId agent);

  std::uint64_t version() const noexcept { return tree_.version(); }
  std::size_t known_iagents() const noexcept { return tree_.leaf_count(); }
  const LHAgentStats& stats() const noexcept { return stats_; }
  const hashtree::HashTree& tree() const noexcept { return tree_; }

  /// Allocated bytes of this node's mechanism state: the secondary hash
  /// copy (serialized size as proxy), the update batcher, and the location
  /// cache. Feeds `HashLocationScheme::estimated_resident_bytes`.
  std::size_t resident_bytes() const noexcept {
    std::size_t bytes = tree_.serialized_bytes();
    if (batcher_ != nullptr) bytes += batcher_->resident_bytes();
    if (cache_ != nullptr) bytes += cache_->resident_bytes();
    return bytes;
  }

  /// Pull the primary copy from the HAgent, then run `done` (also on
  /// failure — the caller retries end-to-end). Coalesces concurrent calls.
  void refresh(std::function<void()> done);

  /// --- Update batching (opt-in; DESIGN.md §10) --------------------------
  /// Install a batcher so co-located movers report through `enqueue_update`
  /// instead of one wire message each. Call after creation (the scheme does
  /// this when `MechanismConfig::update_batching` is set).
  void enable_update_batching(sim::SimTime flush_interval,
                              std::size_t max_entries);

  /// Hand one location report to the batcher (falls back to an immediate
  /// single-entry batch when batching is not enabled).
  void enqueue_update(const LocationEntry& entry);

  UpdateBatcher* batcher() noexcept { return batcher_.get(); }

  /// --- Location caching (opt-in; DESIGN.md §12) -------------------------
  /// Install a per-node cache of (agent → node) bindings. Call after
  /// creation (the scheme does this when
  /// `MechanismConfig::location_cache.enabled` is set).
  void enable_location_cache(const LocationCacheConfig& config);

  LocationCache* location_cache() noexcept { return cache_.get(); }
  const LocationCache* location_cache() const noexcept { return cache_.get(); }

  /// Deposit a binding the node learned for free — a co-located mover's
  /// report, a LocateReply, a WatchNotify. No-op without a cache.
  void cache_store(const LocationEntry& entry);

  /// Drop a cached binding (no-op without a cache).
  void cache_invalidate(platform::AgentId agent);

 private:
  void pull(bool force_full);
  void finish_pull();
  void note_pull_failure();

  std::vector<platform::AgentAddress> coordinators_;
  std::size_t coordinator_index_ = 0;
  platform::AgentAddress hagent_;  ///< current coordinator
  int failover_threshold_ = 2;
  int consecutive_failures_ = 0;
  hashtree::HashTree tree_;
  bool pull_in_flight_ = false;
  std::vector<std::function<void()>> waiters_;
  std::unique_ptr<UpdateBatcher> batcher_;
  std::unique_ptr<LocationCache> cache_;
  LHAgentStats stats_;
};

}  // namespace agentloc::core
