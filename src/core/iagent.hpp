#pragma once

#include <deque>
#include <memory>
#include <vector>
#include <optional>

#include "core/config.hpp"
#include "core/tracker_table.hpp"
#include "platform/agent.hpp"
#include "sim/timer.hpp"
#include "util/flat_map.hpp"

namespace agentloc::core {

/// Counters exposed for tests and benches.
struct IAgentStats {
  std::uint64_t registers = 0;
  std::uint64_t updates = 0;          ///< update entries applied or refused
  std::uint64_t batched_updates = 0;  ///< BatchedUpdate messages received
  std::uint64_t locates = 0;
  std::uint64_t not_responsible_replies = 0;
  std::uint64_t transient_replies = 0;
  std::uint64_t unknown_replies = 0;
  std::uint64_t handoff_batches_out = 0;
  std::uint64_t handoff_entries_out = 0;
  std::uint64_t handoff_batches_in = 0;
  std::uint64_t handoff_entries_in = 0;
  std::uint64_t split_requests = 0;
  std::uint64_t merge_requests = 0;
  std::uint64_t locality_migrations = 0;
  std::uint64_t watches_armed = 0;
  std::uint64_t watches_fired = 0;
  std::uint64_t watches_refused = 0;
};

/// Information Agent (paper §2.2): a mobile agent that maintains the precise
/// current location of every mobile agent hashed to it.
///
/// Behaviour implemented here, mapped to the paper:
///  * serves Register/Update/Locate requests, verifying responsibility via
///    the predicate the HAgent last granted (§2.3 "checks whether it is
///    still responsible");
///  * keeps windowed request statistics, total and per served agent (§4),
///    and asks the HAgent to split when the rate exceeds Tmax or to merge
///    when it falls below Tmin (§4.1–4.2), with a cooldown providing
///    hysteresis;
///  * executes handoffs: pushes entries matching a transfer predicate to a
///    newly created IAgent, receives entries on its own creation or on a
///    sibling's retirement, and retires itself on a RetireOrder (§4.1–4.2);
///  * optionally migrates toward the plurality node of its served agents
///    (the paper's §7 locality extension).
class IAgent : public platform::Agent {
 public:
  IAgent(const MechanismConfig& config, platform::AgentAddress hagent);

  /// With coordinator failover (the §7 fault-tolerance extension): requests
  /// go to the first address; a bounced coordinator message rotates to the
  /// next and asks it to promote itself.
  IAgent(const MechanismConfig& config,
         std::vector<platform::AgentAddress> coordinators);

  std::string kind() const override { return "iagent"; }

  /// Migration ships the location table: 2 KiB of code/state plus ~20 bytes
  /// per entry.
  std::size_t serialized_size() const override {
    return 2048 + 20 * table_.size();
  }

  void on_start() override;
  void on_arrival(net::NodeId from_node) override;
  void on_extract() override;
  void on_shard_transfer() override;
  void on_message(const platform::Message& message) override;
  void on_delivery_failure(const platform::DeliveryFailure& failure) override;

  const IAgentStats& stats() const noexcept { return stats_; }
  std::size_t entry_count() const noexcept { return table_.size(); }

  /// Pre-size the location table for an expected share of the tracked
  /// population (bulk registration would otherwise rehash repeatedly).
  void reserve(std::size_t agents) { table_.reserve(agents); }

  /// Allocated bytes of the tracking state this IAgent holds: location
  /// table, load window, watcher lists, and the locality scratch histogram.
  /// Feeds `LocationScheme::estimated_resident_bytes`.
  std::size_t resident_bytes() const noexcept {
    std::size_t watcher_bytes =
        watchers_.capacity() *
        (sizeof(platform::AgentId) +
         sizeof(std::vector<platform::AgentAddress>));
    watchers_.for_each(
        [&](platform::AgentId,
            const std::vector<platform::AgentAddress>& list) {
          watcher_bytes += list.capacity() * sizeof(platform::AgentAddress);
        });
    return table_.resident_bytes() + window_.resident_bytes() +
           watcher_bytes + per_node_counts_.capacity() * sizeof(std::size_t);
  }
  const Predicate& predicate() const noexcept { return predicate_; }
  std::uint64_t hash_version() const noexcept { return hash_version_; }
  double last_window_rate() const noexcept { return window_.rate(); }
  bool retiring() const noexcept { return retiring_; }

 private:
  void handle_register(const platform::Message& message,
                       const RegisterRequest& request);
  void handle_update(const platform::Message& message,
                     const UpdateRequest& request);
  void handle_batched_update(const platform::Message& message,
                             const BatchedUpdate& batch);
  void handle_locate(const platform::Message& message,
                     const LocateRequest& request);
  void handle_watch(const platform::Message& message,
                    const WatchRequest& request);
  void fire_watchers(const LocationEntry& entry);
  void handle_responsibility(const ResponsibilityUpdate& update);
  void handle_handoff(const platform::Message& message,
                      const HandoffTransfer& transfer);
  void handle_retire(const RetireOrder& order);

  /// True when this IAgent must answer for `agent` under the current hash
  /// function.
  bool responsible_for(platform::AgentId agent) const {
    return predicate_.matches(agent);
  }

  void roll_window();
  void maybe_request_rehash();
  void consider_locality_migration();

  /// Reliable transfer of a whole entry set: splits into batches of
  /// `max_handoff_batch`, ships them as a chain (only the last is marked
  /// final), re-sending each until acked (entries are seq-checked on the
  /// receiving side, so duplicates are harmless). Calls `done` once.
  void push_entries(platform::AgentAddress target,
                    std::vector<LocationEntry> entries,
                    std::function<void()> done);

  /// One batch of the chain.
  void push_batch(platform::AgentAddress target,
                  std::vector<LocationEntry> batch, bool final_batch,
                  int attempts_left, std::function<void()> done);

  void finish_retirement();

  MechanismConfig config_;
  std::vector<platform::AgentAddress> coordinators_;
  std::size_t coordinator_index_ = 0;
  platform::AgentAddress hagent_;  ///< == coordinators_[coordinator_index_]

  LocationTable table_;
  LoadWindow window_;
  Predicate predicate_;  ///< initially empty: responsible for everything
  std::uint64_t hash_version_ = 0;

  std::unique_ptr<sim::PeriodicTimer> window_timer_;
  sim::SimTime cooldown_until_ = sim::SimTime::zero();
  sim::SimTime transient_until_ = sim::SimTime::zero();
  sim::SimTime created_at_ = sim::SimTime::zero();

  /// Guaranteed-discovery extension: one-shot subscribers per tracked agent
  /// (flat storage — same footprint argument as the scheme seq tables).
  util::FlatMap<platform::AgentId, std::vector<platform::AgentAddress>,
                platform::kNoAgent>
      watchers_;

  /// Scratch histogram for `consider_locality_migration` (node-indexed;
  /// kept as a member so the periodic roll never reallocates).
  std::vector<std::size_t> per_node_counts_;

  bool retiring_ = false;
  std::size_t retire_outstanding_ = 0;
  std::uint64_t retire_version_ = 0;

  IAgentStats stats_;
};

}  // namespace agentloc::core
