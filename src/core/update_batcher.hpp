#pragma once

#include <cstdint>
#include <vector>

#include "core/protocol.hpp"
#include "sim/timer.hpp"
#include "util/flat_map.hpp"

namespace agentloc::platform {
class AgentSystem;
}

namespace agentloc::core {

class LHAgent;

/// Counters exposed for tests and the batching ablation bench.
struct UpdateBatcherStats {
  std::uint64_t enqueued = 0;
  /// Newest-seq-wins overwrites inside the pending pool: a mover reported
  /// again before the previous report flushed, so one wire entry (not just
  /// one wire message) was saved.
  std::uint64_t replaced = 0;
  std::uint64_t batches_sent = 0;
  std::uint64_t entries_sent = 0;
  std::uint64_t requeued = 0;  ///< entries re-enqueued after an IAgent nack
};

/// Per-node location-update coalescing (opt-in; DESIGN.md §10).
///
/// Lives inside the node's LHAgent. Movers hand their `LocationEntry` to the
/// batcher instead of paying for an `UpdateRequest` message each; the batcher
/// keeps at most one pending entry per agent (newest seq wins, mirroring the
/// IAgent table's rule) and flushes on a short timer or when
/// `max_entries` distinct agents are pending — whichever comes first.
/// Targets are resolved against the LHAgent's hash copy *at flush time*, so a
/// refresh between enqueue and flush redirects the whole batch for free.
class UpdateBatcher {
 public:
  UpdateBatcher(LHAgent& owner, platform::AgentSystem& system,
                sim::SimTime flush_interval, std::size_t max_entries);

  /// Add (or newest-wins-overwrite) one pending location report.
  void enqueue(const LocationEntry& entry);

  /// Re-enqueue entries an IAgent refused; called after the owning LHAgent
  /// refreshed its copy, so the next flush re-resolves them.
  void requeue(const std::vector<LocationEntry>& entries);

  /// Send every pending entry now, one `BatchedUpdate` per target IAgent.
  void flush();

  std::size_t pending() const noexcept { return pending_.size(); }
  const UpdateBatcherStats& stats() const noexcept { return stats_; }

  /// Allocated bytes of the pending pool and its id index.
  std::size_t resident_bytes() const noexcept {
    return pending_.capacity() * sizeof(LocationEntry) +
           index_.capacity() *
               (sizeof(platform::AgentId) + sizeof(std::uint32_t));
  }

 private:
  void arm_timer();

  LHAgent& owner_;
  platform::AgentSystem& system_;
  sim::SimTime flush_interval_;
  std::size_t max_entries_;

  /// Pending pool in deterministic insertion order plus an index by agent id
  /// for the newest-wins overwrite.
  std::vector<LocationEntry> pending_;
  util::FlatMap<platform::AgentId, std::uint32_t, platform::kNoAgent> index_;
  std::uint64_t replaced_since_flush_ = 0;

  sim::Timeout timer_;
  UpdateBatcherStats stats_;
};

}  // namespace agentloc::core
