#pragma once

#include <functional>
#include <optional>
#include <unordered_map>

#include "core/config.hpp"
#include "core/protocol.hpp"
#include "hashtree/delta.hpp"
#include "hashtree/tree.hpp"
#include "platform/agent.hpp"
#include "sim/timer.hpp"

namespace agentloc::core {

struct HAgentStats {
  std::uint64_t pulls_served = 0;
  std::uint64_t delta_pulls_served = 0;
  std::uint64_t ops_replicated = 0;
  std::uint64_t ops_applied_as_follower = 0;
  std::uint64_t resyncs = 0;
  std::uint64_t promotions = 0;
  std::uint64_t simple_splits = 0;
  std::uint64_t complex_splits = 0;
  std::uint64_t simple_merges = 0;
  std::uint64_t complex_merges = 0;
  std::uint64_t rehashes_rejected = 0;  ///< busy, stale, or last-leaf guard
  std::uint64_t rehash_timeouts = 0;
  std::uint64_t iagent_moves = 0;
  std::uint64_t journal_bytes = 0;        ///< encoded size of the retained ops
  std::uint64_t journal_compactions = 0;  ///< bound-forced truncation events
};

/// Hash Agent (paper §2.2): the static agent holding the *primary copy* of
/// the hash function and coordinating rehashing — "the HAgent ensures that
/// only one such process is in progress at each time" (§4).
///
/// Split planning follows §4.1: complex-split candidates are tried first in
/// paper order (left-most multi-bit label, first padding bit after the valid
/// bit), accepting the first whose projected load division is even within
/// `even_tolerance`; otherwise a simple split scans m = 1, 2, … for an even
/// division and settles for the best m seen. Load projections use the
/// per-agent request counts the overloaded IAgent reported.
class HAgent : public platform::Agent {
 public:
  enum class Role { kPrimary, kFollower };

  explicit HAgent(const MechanismConfig& config);

  std::string kind() const override { return "hagent"; }

  /// The HAgent is stationary; its serialized size is irrelevant but kept
  /// honest: primary copy plus code.
  std::size_t serialized_size() const override {
    return 4096 + (tree_ ? tree_->serialized_bytes() : 0);
  }

  /// Create the first IAgent (at `first_node`) and initialize the primary
  /// copy. Called once by the scheme right after the HAgent is created.
  /// Returns the initial IAgent's id.
  platform::AgentId bootstrap(net::NodeId first_node);

  /// Turn this instance into a standby replica of `primary` with a copy of
  /// its current tree (setup-time shortcut, like the LHAgents' initial
  /// copies). A follower applies ReplicateOps, serves pulls, and refuses
  /// rehashes until promoted.
  void bootstrap_follower(platform::AgentAddress primary,
                          const hashtree::HashTree& snapshot);

  /// Register the standby that every mutation is streamed to.
  void set_backup(platform::AgentAddress backup);

  /// How this coordinator creates IAgents. Unhooked (the default), new
  /// IAgents are `create`d in the HAgent's own system. A sharded deployment
  /// (DESIGN.md §16) installs a hook that constructs the IAgent from the
  /// given config + coordinator list, mints its id on the HAgent's shard
  /// (so it is returned synchronously and the tree op can reference it),
  /// and installs the object on the shard owning `node` — at setup directly,
  /// at runtime via a cross-LP envelope that lands strictly before any
  /// responsibility grant sent afterwards. Install before `bootstrap`.
  using IAgentSpawner = std::function<platform::AgentId(
      net::NodeId node, const MechanismConfig& config,
      std::vector<platform::AgentAddress> coordinators)>;
  void set_iagent_spawner(IAgentSpawner spawner) {
    spawner_ = std::move(spawner);
  }

  Role role() const noexcept { return role_; }

  void on_message(const platform::Message& message) override;

  /// Primary copy (bootstrap must have run).
  const hashtree::HashTree& tree() const { return *tree_; }

  /// How a split of `victim` would be performed: a complex split at
  /// `complex_point` when set, else a simple split on the m-th unused bit.
  struct SplitPlan {
    std::optional<hashtree::SplitPoint> complex_point;
    std::size_t simple_m = 1;
    /// Projected fraction of the victim's load the new IAgent takes.
    double moved_fraction = 0.0;
  };

  /// Pure split-planning logic (paper §4.1), exposed for tests: complex
  /// candidates in paper order first, accepting the first even division of
  /// the reported per-agent loads; otherwise the first (or failing that,
  /// the most even) simple-split depth m.
  static SplitPlan plan_split(const hashtree::HashTree& tree,
                              hashtree::IAgentId victim,
                              const std::vector<AgentLoad>& loads,
                              const MechanismConfig& config);

  const HAgentStats& stats() const noexcept { return stats_; }
  bool rehash_in_progress() const noexcept { return busy_; }

  /// Allocated bytes of the primary copy (serialized size as proxy) plus the
  /// retained replication journal.
  std::size_t resident_bytes() const noexcept {
    return (tree_ ? tree_->serialized_bytes() : 0) +
           static_cast<std::size_t>(stats_.journal_bytes);
  }
  std::size_t iagent_count() const {
    return tree_ ? tree_->leaf_count() : 0;
  }

 private:
  void handle_pull(const platform::Message& message,
                   const HashPullRequest& request);
  void handle_split(const platform::Message& message,
                    const SplitRequest& request);
  void handle_merge(const platform::Message& message,
                    const MergeRequest& request);
  void handle_done(const RehashDone& done);
  void handle_moved(const IAgentMoved& moved);
  void handle_replicate(const ReplicateOp& replicate);
  void promote();

  /// Stream one journaled op to the backup, if any.
  void replicate(const hashtree::TreeOp& op);

  /// Journal the op that produced the current tree version, refresh the
  /// journal stats, and stream it to the backup — the one post-mutation path
  /// shared by splits, merges, and location changes.
  void record_op(const hashtree::TreeOp& op);

  /// Follower: pull a full snapshot from the primary (op gap detected).
  void resync_from_primary();

  /// Bit `position` of an agent id (missing bits read as 0, matching
  /// `HashTree::lookup`).
  static bool id_bit(platform::AgentId id, std::size_t position) {
    return position < 64 && ((id >> (63 - position)) & 1u) != 0;
  }

  net::NodeId place_new_iagent();

  /// Create a fresh IAgent at `node` through the spawner hook (or directly
  /// in this system) and return its id.
  platform::AgentId spawn_iagent(net::NodeId node);

  /// Coordinator addresses handed to every IAgent this HAgent creates:
  /// itself first, then the backup when one is registered.
  std::vector<platform::AgentAddress> coordinator_list() const;

  void begin_rehash(std::size_t done_expected);
  void send_grant(hashtree::IAgentId leaf, const ResponsibilityUpdate& grant);

  std::unordered_map<hashtree::IAgentId, Predicate> predicate_snapshot() const;

  MechanismConfig config_;
  std::optional<hashtree::HashTree> tree_;

  bool busy_ = false;
  std::size_t done_outstanding_ = 0;
  std::unique_ptr<sim::Timeout> rehash_timeout_;

  net::NodeId next_placement_ = 0;
  hashtree::TreeJournal journal_;
  IAgentSpawner spawner_;

  Role role_ = Role::kPrimary;
  std::optional<platform::AgentAddress> backup_;
  std::optional<platform::AgentAddress> primary_;
  bool resync_in_flight_ = false;

  HAgentStats stats_;
};

}  // namespace agentloc::core
