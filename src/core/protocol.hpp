#pragma once

#include <cstdint>
#include <vector>

#include "hashtree/tree.hpp"
#include "platform/message.hpp"

namespace agentloc::core {

/// One row of an IAgent's location table: the precise current location of a
/// tracked mobile agent. `seq` is the agent's move counter; the network may
/// reorder updates (an agent's consecutive updates are sent from different
/// nodes), so tables only apply an update with a newer sequence number.
struct LocationEntry {
  platform::AgentId agent = platform::kNoAgent;
  net::NodeId node = net::kNoNode;
  std::uint64_t seq = 0;
};

/// An IAgent's responsibility test, distilled from its leaf's hyper-label:
/// the positions and values of the valid bits (paper §3 — padding bits do
/// not participate). The HAgent recomputes predicates from the primary tree
/// after every rehash and ships them to the affected IAgents, which is how an
/// IAgent "checks whether it is still responsible" (paper §2.3) without
/// holding the whole tree.
struct Predicate {
  /// Wire/debug form: the hyper-label's valid (position, bit) pairs.
  std::vector<std::pair<std::uint32_t, bool>> valid_bits;

  /// Compiled form, built once by `compile()`: an id matches iff
  /// `(id & mask) == value`. Positions beyond the 64 id bits demand padding
  /// bits the id cannot supply, and conflicting duplicate positions demand
  /// two values at once — either makes the predicate `impossible`.
  std::uint64_t mask = 0;
  std::uint64_t value = 0;
  bool impossible = false;

  /// Distil `valid_bits` into the (mask, value) pair. Idempotent; called by
  /// `predicate_of` and by every receiver of a predicate-carrying message,
  /// so hand-built test predicates must call it too.
  void compile() noexcept {
    mask = 0;
    value = 0;
    impossible = false;
    for (const auto& [position, bit] : valid_bits) {
      if (position >= 64) {
        if (bit) impossible = true;
        continue;
      }
      const std::uint64_t bit_mask = 1ull << (63 - position);
      const std::uint64_t bit_value = bit ? bit_mask : 0;
      if ((mask & bit_mask) != 0 && (value & bit_mask) != bit_value) {
        impossible = true;
      }
      mask |= bit_mask;
      value |= bit_value;
    }
  }

  /// Responsibility test on the hot paths (every update, locate and handoff
  /// routing decision): one AND plus one compare.
  bool matches(platform::AgentId id) const noexcept {
    return !impossible && (id & mask) == value;
  }

  /// Reference semantics, straight off the wire form. Kept as the oracle
  /// for the compile() equivalence test.
  bool matches_scan(platform::AgentId id) const noexcept {
    for (const auto& [position, bit] : valid_bits) {
      const bool id_bit =
          position < 64 && ((id >> (63 - position)) & 1u) != 0;
      if (id_bit != bit) return false;
    }
    return true;
  }

  std::size_t wire_bytes() const noexcept {
    return 4 + 5 * valid_bits.size();
  }
};

/// Extract the predicate of `leaf` from a hash tree.
Predicate predicate_of(const hashtree::HashTree& tree, hashtree::IAgentId leaf);

// ---------------------------------------------------------------------------
// Client ↔ IAgent (register / move / locate; paper §2.3)
// ---------------------------------------------------------------------------

/// A mobile agent announcing itself to its IAgent at creation time.
struct RegisterRequest {
  LocationEntry entry;
  static constexpr std::size_t kWireBytes = 40;
};

/// A mobile agent reporting its new location after a migration — **one-way**,
/// exactly as the paper describes it ("each time A moves, it informs its
/// IAgent about its new location", §2.3). No acknowledgement: the common
/// case must not tie up the mover, and an ack would race the agent's next
/// migration. The IAgent responds only when something is wrong, with a
/// `NotResponsibleNotice`.
struct UpdateRequest {
  LocationEntry entry;
  static constexpr std::size_t kWireBytes = 40;
};

/// Acknowledgement to a RegisterRequest. `responsible == false` signals the
/// sender used a stale hash copy and must refresh and resend (paper §4.3
/// trigger (i)).
struct UpdateAck {
  bool responsible = true;
  /// Newest hash version the IAgent has heard of; a hint for the refresh.
  std::uint64_t version_hint = 0;
  static constexpr std::size_t kWireBytes = 24;
};

/// One-way notice from an IAgent to a mobile agent whose update it is not
/// responsible for (paper §4.3 trigger (i)): the agent must refresh its
/// LHAgent's copy and resend. Best-effort — if the agent has moved on, its
/// next update self-corrects.
struct NotResponsibleNotice {
  platform::AgentId agent = platform::kNoAgent;
  std::uint64_t version_hint = 0;
  static constexpr std::size_t kWireBytes = 24;
};

/// Subscribe to the target's next location update (guaranteed-discovery
/// extension; the paper's §6 future-work item, after Moreau and
/// Murphy/Picco). The IAgent acks with the current LocateReply and, when the
/// target's next UpdateRequest arrives, pushes one WatchNotify to the
/// watcher — a location that is *fresh*: the target has just landed and its
/// dwell time lies ahead, so a follow-up contact wins the race a plain
/// locate can lose against a fast mover.
struct WatchRequest {
  platform::AgentId target = platform::kNoAgent;
  static constexpr std::size_t kWireBytes = 24;
};

/// One-shot notification fulfilling a WatchRequest.
struct WatchNotify {
  LocationEntry entry;
  static constexpr std::size_t kWireBytes = 40;
};

/// LHAgent → IAgent (update-batching extension, DESIGN.md §10): several
/// co-located agents' location reports coalesced into one wire message. The
/// receiver applies each entry under the usual newest-seq-wins rule, so a
/// batch is semantically identical to its member `UpdateRequest`s — it just
/// pays one message and one service slot instead of N.
struct BatchedUpdate {
  std::vector<LocationEntry> entries;
  std::size_t wire_bytes() const noexcept { return 24 + 20 * entries.size(); }
};

/// IAgent → LHAgent: the subset of a `BatchedUpdate` the receiver is not
/// responsible for (the batched analogue of `NotResponsibleNotice`). The
/// LHAgent refreshes its hash copy and re-enqueues the entries, so they ride
/// the next flush to the right IAgent.
struct BatchedUpdateNack {
  std::vector<LocationEntry> entries;
  std::uint64_t version_hint = 0;
  std::size_t wire_bytes() const noexcept { return 24 + 20 * entries.size(); }
};

/// A mobile agent leaving the system.
struct DeregisterRequest {
  platform::AgentId agent = platform::kNoAgent;
  std::uint64_t seq = 0;
  static constexpr std::size_t kWireBytes = 24;
};

/// Query for the current location of `target` (paper §2.3, "Locating an
/// Agent").
struct LocateRequest {
  platform::AgentId target = platform::kNoAgent;
  static constexpr std::size_t kWireBytes = 24;
};

enum class LocateStatus : std::uint8_t {
  kFound,           ///< `node` holds the target's current location
  kNotResponsible,  ///< stale hash copy: refresh and retry (§4.3 trigger (ii))
  kTransient,       ///< responsible, but a handoff is in flight: retry later
  kUnknown,         ///< responsible and the agent is not registered
};

struct LocateReply {
  LocateStatus status = LocateStatus::kUnknown;
  net::NodeId node = net::kNoNode;
  std::uint64_t version_hint = 0;
  /// The target's move sequence number as recorded in the responsible
  /// IAgent's table (kFound only). Lets the requester's node cache the
  /// binding newest-seq-wins (DESIGN.md §12) — a reordered older reply can
  /// never roll a cached binding back. Payload stays within the modeled 32
  /// bytes (1 + 4 + 8 + 8 of fields under a 16-byte header).
  std::uint64_t seq = 0;
  static constexpr std::size_t kWireBytes = 32;
};

/// Requester → LHAgent at a cached node: "is `target` hosted at your node
/// right now?" — the verification leg of an optimistic locate (DESIGN.md
/// §12). The receiving LHAgent answers from its node's resident table, a
/// strictly node-local check, so the probe costs one round trip to where the
/// requester believes the target lives instead of one to the responsible
/// IAgent.
struct LocationProbeRequest {
  platform::AgentId target = platform::kNoAgent;
  static constexpr std::size_t kWireBytes = 24;
};

/// Reply to a LocationProbeRequest. `present == false` is a stale-miss NACK:
/// the prober invalidates its cached binding and falls back to the
/// authoritative IAgent.
struct LocationProbeReply {
  bool present = false;
  static constexpr std::size_t kWireBytes = 24;
};

// ---------------------------------------------------------------------------
// LHAgent ↔ HAgent (secondary-copy refresh; paper §4.3)
// ---------------------------------------------------------------------------

struct HashPullRequest {
  std::uint64_t have_version = 0;
  /// Set when a previous delta failed to apply: demand a full snapshot.
  bool force_full = false;
  static constexpr std::size_t kWireBytes = 24;
};

/// Refresh payload: either a full snapshot of the primary copy or, when the
/// HAgent's journal still covers the requester's version, a delta of tree
/// operations (much smaller under steady churn). Either way the wire size is
/// the actual serialized payload, so refresh traffic is charged honestly.
struct HashPullReply {
  bool is_delta = false;
  std::vector<std::uint8_t> payload;
  std::size_t wire_bytes() const noexcept { return 16 + payload.size(); }
};

// ---------------------------------------------------------------------------
// IAgent ↔ HAgent (rehashing; paper §4)
// ---------------------------------------------------------------------------

/// Per-agent accumulated request rate (update + query) the IAgent reports
/// with a split request so the HAgent can plan an even split (paper §4.1).
struct AgentLoad {
  platform::AgentId agent = platform::kNoAgent;
  std::uint32_t requests = 0;
};

struct SplitRequest {
  double rate = 0.0;  ///< requests/second over the last window
  std::vector<AgentLoad> loads;
  std::size_t wire_bytes() const noexcept { return 32 + 12 * loads.size(); }
};

struct MergeRequest {
  double rate = 0.0;
  std::size_t entry_count = 0;
  static constexpr std::size_t kWireBytes = 32;
};

/// HAgent → IAgent: your responsibility changed (you were split, a sibling
/// merged into your region, or you are freshly created). When `transfer_to`
/// is set, entries matching that predicate must be handed off to it.
struct ResponsibilityUpdate {
  std::uint64_t version = 0;
  Predicate predicate;

  bool has_transfer = false;
  platform::AgentAddress transfer_to;
  Predicate transfer_predicate;

  /// Count of HandoffTransfer batches this (new) IAgent should still expect;
  /// while positive, compatible-but-unknown lookups answer kTransient.
  std::uint32_t expected_handoffs = 0;

  std::size_t wire_bytes() const noexcept {
    return 48 + predicate.wire_bytes() + transfer_predicate.wire_bytes();
  }
};

/// Batch of entries moving between IAgents during a split or merge.
struct HandoffTransfer {
  std::vector<LocationEntry> entries;
  /// True when this is the last batch the receiver should expect from this
  /// sender for the current rehash.
  bool final_batch = true;
  std::size_t wire_bytes() const noexcept {
    return 24 + 20 * entries.size();
  }
};

struct HandoffAck {
  static constexpr std::size_t kWireBytes = 16;
};

/// IAgent → HAgent: I finished acting on a ResponsibilityUpdate.
struct RehashDone {
  std::uint64_t version = 0;
  static constexpr std::size_t kWireBytes = 24;
};

/// HAgent → IAgent: you were merged away. Route each of your entries to the
/// first matching route and dispose yourself when done.
struct RetireOrder {
  std::uint64_t version = 0;
  struct Route {
    Predicate predicate;
    platform::AgentAddress target;
  };
  std::vector<Route> routes;
  std::size_t wire_bytes() const noexcept {
    std::size_t size = 32;
    for (const auto& route : routes) size += 16 + route.predicate.wire_bytes();
    return size;
  }
};

/// Primary HAgent → backup HAgent: one tree operation to replay (the
/// fault-tolerance extension of §7: replicating the primary copy removes
/// the HAgent as a single point of failure). Ops are versioned; a gap makes
/// the follower resynchronize with a full pull.
struct ReplicateOp {
  std::uint64_t version = 0;  ///< tree version after applying the op
  std::vector<std::uint8_t> op_bytes;
  std::size_t wire_bytes() const noexcept { return 24 + op_bytes.size(); }
};

/// Anyone → backup HAgent: the primary looks dead; take over. Idempotent.
struct PromoteRequest {
  static constexpr std::size_t kWireBytes = 16;
};

/// Mobile IAgent → HAgent: I migrated; update my location in the primary
/// copy (the paper's locality extension, §7).
struct IAgentMoved {
  hashtree::IAgentId iagent = hashtree::kNoIAgent;
  net::NodeId node = net::kNoNode;
  static constexpr std::size_t kWireBytes = 24;
};

}  // namespace agentloc::core
