#include "core/centralized_scheme.hpp"

#include <utility>

namespace agentloc::core {

void CentralTracker::on_message(const platform::Message& message) {
  ++requests_;
  if (const auto* request = message.body_as<RegisterRequest>()) {
    table_.apply(request->entry);
    system().reply(message, id(), UpdateAck{true, 0}, UpdateAck::kWireBytes);
  } else if (const auto* request = message.body_as<UpdateRequest>()) {
    // One-way (the tracker is always responsible): no acknowledgement.
    table_.apply(request->entry);
  } else if (const auto* request = message.body_as<LocateRequest>()) {
    LocateReply reply;
    if (const auto entry = table_.find(request->target)) {
      reply.status = LocateStatus::kFound;
      reply.node = entry->node;
    } else {
      reply.status = LocateStatus::kUnknown;
    }
    system().reply(message, id(), reply, LocateReply::kWireBytes);
  } else if (const auto* request = message.body_as<DeregisterRequest>()) {
    table_.remove(request->agent, request->seq);
  }
}

CentralizedLocationScheme::CentralizedLocationScheme(
    platform::AgentSystem& system, MechanismConfig config,
    net::NodeId tracker_node)
    : system_(system), config_(config) {
  tracker_ = &system_.create<CentralTracker>(tracker_node);
  tracker_address_ = platform::AgentAddress{tracker_node, tracker_->id()};
}

CentralizedLocationScheme::CentralizedLocationScheme(
    platform::AgentSystem& system, MechanismConfig config,
    platform::AgentAddress tracker)
    : system_(system), config_(config), tracker_address_(tracker) {}

std::vector<std::unique_ptr<CentralizedLocationScheme>>
CentralizedLocationScheme::build_sharded(
    const std::vector<platform::AgentSystem*>& systems,
    const MechanismConfig& config, net::NodeId tracker_node) {
  std::vector<std::unique_ptr<CentralizedLocationScheme>> schemes;
  schemes.reserve(systems.size());
  // The owner shard creates the tracker; every other shard gets a client
  // instance pointed at it (setup is serial, the address is known first).
  auto owner = std::make_unique<CentralizedLocationScheme>(
      *systems[tracker_node], config, tracker_node);
  const platform::AgentAddress tracker = owner->tracker_address_;
  for (std::size_t s = 0; s < systems.size(); ++s) {
    if (s == tracker_node) {
      schemes.push_back(std::move(owner));
    } else {
      schemes.push_back(std::make_unique<CentralizedLocationScheme>(
          *systems[s], config, tracker));
    }
  }
  return schemes;
}

LocationScheme::ClientState CentralizedLocationScheme::export_client_state(
    platform::AgentId agent) {
  ClientState state;
  if (const std::uint64_t* seq = seqs_.find(agent)) {
    state.seq = *seq;
    seqs_.erase(agent);
  }
  return state;
}

void CentralizedLocationScheme::import_client_state(platform::AgentId agent,
                                                    const ClientState& state) {
  if (state.seq != 0) seqs_[agent] = state.seq;
}

void CentralizedLocationScheme::register_agent(platform::Agent& self,
                                               std::function<void(bool)> done) {
  ++stats_.registers;
  send_report(self.id(), ++seqs_[self.id()], config_.max_locate_retries,
              std::move(done));
}

void CentralizedLocationScheme::update_location(platform::Agent& self,
                                                std::function<void(bool)> done) {
  ++stats_.updates;
  const auto node = system_.node_of(self.id());
  if (node) {
    system_.send(self.id(), tracker_address_,
                 UpdateRequest{LocationEntry{self.id(), *node,
                                             ++seqs_[self.id()]}},
                 UpdateRequest::kWireBytes);
  }
  done(true);
}

void CentralizedLocationScheme::deregister_agent(platform::Agent& self) {
  ++stats_.deregisters;
  if (!system_.node_of(self.id())) return;
  system_.send(self.id(), tracker_address_,
               DeregisterRequest{self.id(), ++seqs_[self.id()]},
               DeregisterRequest::kWireBytes);
  seqs_.erase(self.id());
}

void CentralizedLocationScheme::send_report(platform::AgentId self,
                                            std::uint64_t seq,
                                            int attempts_left,
                                            std::function<void(bool)> done) {
  const auto node = system_.node_of(self);
  if (!node || attempts_left <= 0) {
    done(false);
    return;
  }
  const LocationEntry entry{self, *node, seq};
  system_.request(
      self, tracker_address_, RegisterRequest{entry},
      RegisterRequest::kWireBytes,
      [this, self, seq, attempts_left,
       done = std::move(done)](platform::RpcResult result) mutable {
        if (result.ok()) {
          done(true);
          return;
        }
        ++stats_.timeout_retries;
        send_report(self, seq, attempts_left - 1, std::move(done));
      },
      config_.rpc_timeout);
}

void CentralizedLocationScheme::locate(
    platform::Agent& requester, platform::AgentId target,
    std::function<void(const LocateOutcome&)> done) {
  ++stats_.locates;
  locate_attempt(requester.id(), target, 1, std::move(done));
}

void CentralizedLocationScheme::locate_attempt(
    platform::AgentId requester, platform::AgentId target, int attempt,
    std::function<void(const LocateOutcome&)> done) {
  if (attempt > config_.max_locate_retries || !system_.node_of(requester)) {
    ++stats_.locates_failed;
    done(LocateOutcome{false, net::kNoNode, attempt - 1});
    return;
  }
  system_.request(
      requester, tracker_address_, LocateRequest{target},
      LocateRequest::kWireBytes,
      [this, requester, target, attempt,
       done = std::move(done)](platform::RpcResult result) mutable {
        if (result.ok()) {
          if (const auto* reply = result.reply.body_as<LocateReply>();
              reply != nullptr && reply->status == LocateStatus::kFound) {
            ++stats_.locates_found;
            done(LocateOutcome{true, reply->node, attempt});
            return;
          }
        } else {
          ++stats_.delivery_retries;
        }
        // Not registered yet (creation race) or lost message: retry after a
        // short pause.
        system_.simulator().schedule_after(
            config_.transient_retry_delay,
            [this, requester, target, attempt,
             done = std::move(done)]() mutable {
              locate_attempt(requester, target, attempt + 1, std::move(done));
            });
      },
      config_.rpc_timeout);
}

}  // namespace agentloc::core
