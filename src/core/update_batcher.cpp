#include "core/update_batcher.hpp"

#include <utility>

#include "core/lhagent.hpp"
#include "platform/agent_system.hpp"

namespace agentloc::core {

UpdateBatcher::UpdateBatcher(LHAgent& owner, platform::AgentSystem& system,
                             sim::SimTime flush_interval,
                             std::size_t max_entries)
    : owner_(owner),
      system_(system),
      flush_interval_(flush_interval),
      max_entries_(max_entries == 0 ? 1 : max_entries),
      timer_(system.simulator()) {}

void UpdateBatcher::enqueue(const LocationEntry& entry) {
  ++stats_.enqueued;
  if (const std::uint32_t* position = index_.find(entry.agent)) {
    // The agent moved again before its previous report flushed: keep only
    // the newest location (same rule the IAgent's table applies), saving a
    // wire entry on top of the per-message saving.
    LocationEntry& existing = pending_[*position];
    if (entry.seq >= existing.seq) existing = entry;
    ++stats_.replaced;
    ++replaced_since_flush_;
    return;
  }
  index_.emplace(entry.agent,
                 static_cast<std::uint32_t>(pending_.size()));
  pending_.push_back(entry);
  if (pending_.size() >= max_entries_) {
    flush();
    return;
  }
  arm_timer();
}

void UpdateBatcher::requeue(const std::vector<LocationEntry>& entries) {
  stats_.requeued += entries.size();
  for (const LocationEntry& entry : entries) enqueue(entry);
}

void UpdateBatcher::arm_timer() {
  if (timer_.pending()) return;
  timer_.arm(flush_interval_, [this] { flush(); });
}

void UpdateBatcher::flush() {
  timer_.cancel();
  if (pending_.empty()) return;

  // Resolve targets now — not at enqueue time — so a hash-copy refresh that
  // happened while entries waited redirects the whole batch. Group by
  // target in first-seen order; a node talks to a handful of IAgents per
  // window, so a linear scan beats any map.
  std::vector<std::pair<platform::AgentAddress, BatchedUpdate>> batches;
  for (const LocationEntry& entry : pending_) {
    const platform::AgentAddress target = owner_.resolve(entry.agent);
    BatchedUpdate* batch = nullptr;
    for (auto& [address, candidate] : batches) {
      if (address.agent == target.agent && address.node == target.node) {
        batch = &candidate;
        break;
      }
    }
    if (batch == nullptr) {
      batches.emplace_back(target, BatchedUpdate{});
      batch = &batches.back().second;
    }
    batch->entries.push_back(entry);
  }
  pending_.clear();
  index_.clear();

  std::uint64_t overwrites = replaced_since_flush_;
  replaced_since_flush_ = 0;

  for (auto& [target, batch] : batches) {
    ++stats_.batches_sent;
    stats_.entries_sent += batch.entries.size();
    // Every entry beyond the first rode this batch instead of paying for an
    // UpdateRequest of its own; newest-wins overwrites saved a message too.
    const std::uint64_t coalesced =
        static_cast<std::uint64_t>(batch.entries.size()) - 1 + overwrites;
    overwrites = 0;
    system_.note_batch_flush(coalesced);
    const std::size_t bytes = batch.wire_bytes();
    system_.send(owner_.id(), target, std::move(batch), bytes);
  }
}

}  // namespace agentloc::core
