#pragma once

#include <memory>
#include <vector>

#include "core/centralized_scheme.hpp"
#include "core/config.hpp"
#include "core/scheme.hpp"
#include "util/flat_map.hpp"

namespace agentloc::core {

/// Tell the forwarder at an agent's previous node where it went.
struct SetForward {
  platform::AgentId agent = platform::kNoAgent;
  net::NodeId next = net::kNoNode;
  std::uint64_t seq = 0;
  static constexpr std::size_t kWireBytes = 28;
};

/// Announce (or retract) an agent's presence at the forwarder's node.
struct PresenceNotice {
  platform::AgentId agent = platform::kNoAgent;
  bool here = true;
  std::uint64_t seq = 0;
  static constexpr std::size_t kWireBytes = 28;
};

/// One hop of a forwarding chase.
struct ChaseRequest {
  platform::AgentId target = platform::kNoAgent;
  static constexpr std::size_t kWireBytes = 24;
};

struct ChaseReply {
  enum class Kind : std::uint8_t { kHere, kForward, kUnknown };
  Kind kind = Kind::kUnknown;
  net::NodeId next = net::kNoNode;
  static constexpr std::size_t kWireBytes = 24;
};

/// Per-node forwarding-pointer holder.
class ForwarderAgent : public platform::Agent {
 public:
  std::string kind() const override { return "forwarder"; }

  void on_message(const platform::Message& message) override;

  std::size_t pointer_count() const noexcept { return state_.size(); }
  std::size_t resident_bytes() const noexcept {
    return state_.capacity() * (sizeof(platform::AgentId) + sizeof(Slot));
  }
  void reserve(std::size_t agents) { state_.reserve(agents); }

 private:
  struct Slot {
    bool here = false;
    net::NodeId next = net::kNoNode;
    std::uint64_t seq = 0;
  };
  util::FlatMap<platform::AgentId, Slot, platform::kNoAgent> state_;
};

/// Voyager-style scheme (paper §6): a name service records where each agent
/// registered; as agents move they leave forwarding pointers behind, and a
/// locate chases the pointer chain hop by hop from the name service's last
/// known node. After a successful chase the requester lazily refreshes the
/// name service (Voyager's behaviour), so chains stay short for popular
/// agents but grow with mobility between queries — the contrast the
/// scheme-comparison ablation shows against the hash mechanism.
class ForwardingLocationScheme : public LocationScheme {
 public:
  ForwardingLocationScheme(platform::AgentSystem& system,
                           MechanismConfig config,
                           net::NodeId name_service_node = 0);

  /// Sharded deployment (DESIGN.md §16): one instance per shard (shard index
  /// == node id), each creating its own node's forwarder; the name service
  /// lives on `name_service_node`'s shard. The full forwarder address table
  /// is shared so chases can hop to any node.
  static std::vector<std::unique_ptr<ForwardingLocationScheme>> build_sharded(
      const std::vector<platform::AgentSystem*>& systems,
      const MechanismConfig& config, net::NodeId name_service_node = 0);

  std::string name() const override { return "forwarding"; }

  void register_agent(platform::Agent& self,
                      std::function<void(bool)> done) override;
  void update_location(platform::Agent& self,
                       std::function<void(bool)> done) override;
  void deregister_agent(platform::Agent& self) override;
  void locate(platform::Agent& requester, platform::AgentId target,
              std::function<void(const LocateOutcome&)> done) override;

  /// Name service plus one forwarder per node (sharded instances report only
  /// what they host, so the cross-shard sum matches the legacy value).
  std::size_t tracker_count() const override {
    return (name_service_ != nullptr ? 1 : 0) + forwarders_.size();
  }

  std::size_t estimated_resident_bytes() const noexcept override {
    std::size_t bytes =
        seqs_.capacity() *
            (sizeof(platform::AgentId) + sizeof(std::uint64_t)) +
        last_node_.capacity() *
            (sizeof(platform::AgentId) + sizeof(net::NodeId)) +
        forwarders_.capacity() * sizeof(ForwarderAgent*);
    if (name_service_ != nullptr) bytes += name_service_->resident_bytes();
    for (const ForwarderAgent* forwarder : forwarders_) {
      bytes += forwarder->resident_bytes();
    }
    return bytes;
  }

  void reserve(std::size_t agents) override {
    // Sharded: `agents` is the global population; the per-client tables on
    // this shard only ever hold the agents resident here.
    const std::size_t shards =
        forwarder_addresses_.empty() ? 1 : forwarder_addresses_.size();
    seqs_.reserve(agents / shards + 1);
    last_node_.reserve(agents / shards + 1);
    if (name_service_ != nullptr) name_service_->reserve(agents);
    // Pointers concentrate where agents linger; a uniform share is the best
    // static guess and growth past it is just a normal rehash.
    if (forwarders_.empty()) return;
    const std::size_t share = agents / (shards > 1 ? shards : forwarders_.size()) + 1;
    for (ForwarderAgent* forwarder : forwarders_) forwarder->reserve(share);
  }

  /// Hop counts of completed chases (for the ablation's chain-length story).
  std::uint64_t chase_hops() const noexcept { return chase_hops_; }

  /// Maximum pointer-chain hops a locate will follow.
  static constexpr int kMaxHops = 64;

  /// Per-agent update seq and last-reported node, moved with a client that
  /// crosses shards.
  ClientState export_client_state(platform::AgentId agent) override;
  void import_client_state(platform::AgentId agent,
                           const ClientState& state) override;

 private:
  struct ShardedTag {};
  ForwardingLocationScheme(ShardedTag, platform::AgentSystem& system,
                           MechanismConfig config);

  void chase(platform::AgentId requester, platform::AgentId target,
             net::NodeId at, int hops, int attempt,
             std::function<void(const LocateOutcome&)> done);
  platform::AgentAddress forwarder_at(net::NodeId node) const {
    if (!forwarder_addresses_.empty()) return forwarder_addresses_[node];
    return platform::AgentAddress{node, forwarders_[node]->id()};
  }

  platform::AgentSystem& system_;
  MechanismConfig config_;
  CentralTracker* name_service_ = nullptr;
  platform::AgentAddress name_service_address_;
  std::vector<ForwarderAgent*> forwarders_;  ///< sharded: own node's only
  /// Sharded: full forwarder address table, indexed by node (else empty).
  std::vector<platform::AgentAddress> forwarder_addresses_;
  /// Per-agent update sequence numbers and last-reported nodes (flat
  /// storage; see HashLocationScheme).
  util::FlatMap<platform::AgentId, std::uint64_t, platform::kNoAgent> seqs_;
  util::FlatMap<platform::AgentId, net::NodeId, platform::kNoAgent>
      last_node_;
  std::uint64_t chase_hops_ = 0;
};

}  // namespace agentloc::core
