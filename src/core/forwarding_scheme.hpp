#pragma once

#include <unordered_map>

#include "core/centralized_scheme.hpp"
#include "core/config.hpp"
#include "core/scheme.hpp"

namespace agentloc::core {

/// Tell the forwarder at an agent's previous node where it went.
struct SetForward {
  platform::AgentId agent = platform::kNoAgent;
  net::NodeId next = net::kNoNode;
  std::uint64_t seq = 0;
  static constexpr std::size_t kWireBytes = 28;
};

/// Announce (or retract) an agent's presence at the forwarder's node.
struct PresenceNotice {
  platform::AgentId agent = platform::kNoAgent;
  bool here = true;
  std::uint64_t seq = 0;
  static constexpr std::size_t kWireBytes = 28;
};

/// One hop of a forwarding chase.
struct ChaseRequest {
  platform::AgentId target = platform::kNoAgent;
  static constexpr std::size_t kWireBytes = 24;
};

struct ChaseReply {
  enum class Kind : std::uint8_t { kHere, kForward, kUnknown };
  Kind kind = Kind::kUnknown;
  net::NodeId next = net::kNoNode;
  static constexpr std::size_t kWireBytes = 24;
};

/// Per-node forwarding-pointer holder.
class ForwarderAgent : public platform::Agent {
 public:
  std::string kind() const override { return "forwarder"; }

  void on_message(const platform::Message& message) override;

  std::size_t pointer_count() const noexcept { return state_.size(); }

 private:
  struct Slot {
    bool here = false;
    net::NodeId next = net::kNoNode;
    std::uint64_t seq = 0;
  };
  std::unordered_map<platform::AgentId, Slot> state_;
};

/// Voyager-style scheme (paper §6): a name service records where each agent
/// registered; as agents move they leave forwarding pointers behind, and a
/// locate chases the pointer chain hop by hop from the name service's last
/// known node. After a successful chase the requester lazily refreshes the
/// name service (Voyager's behaviour), so chains stay short for popular
/// agents but grow with mobility between queries — the contrast the
/// scheme-comparison ablation shows against the hash mechanism.
class ForwardingLocationScheme : public LocationScheme {
 public:
  ForwardingLocationScheme(platform::AgentSystem& system,
                           MechanismConfig config,
                           net::NodeId name_service_node = 0);

  std::string name() const override { return "forwarding"; }

  void register_agent(platform::Agent& self,
                      std::function<void(bool)> done) override;
  void update_location(platform::Agent& self,
                       std::function<void(bool)> done) override;
  void deregister_agent(platform::Agent& self) override;
  void locate(platform::Agent& requester, platform::AgentId target,
              std::function<void(const LocateOutcome&)> done) override;

  /// Name service plus one forwarder per node.
  std::size_t tracker_count() const override {
    return 1 + forwarders_.size();
  }

  /// Hop counts of completed chases (for the ablation's chain-length story).
  std::uint64_t chase_hops() const noexcept { return chase_hops_; }

  /// Maximum pointer-chain hops a locate will follow.
  static constexpr int kMaxHops = 64;

 private:
  void chase(platform::AgentId requester, platform::AgentId target,
             net::NodeId at, int hops, int attempt,
             std::function<void(const LocateOutcome&)> done);
  platform::AgentAddress forwarder_at(net::NodeId node) const {
    return platform::AgentAddress{node, forwarders_[node]->id()};
  }

  platform::AgentSystem& system_;
  MechanismConfig config_;
  CentralTracker* name_service_ = nullptr;
  platform::AgentAddress name_service_address_;
  std::vector<ForwarderAgent*> forwarders_;
  std::unordered_map<platform::AgentId, std::uint64_t> seqs_;
  std::unordered_map<platform::AgentId, net::NodeId> last_node_;
  std::uint64_t chase_hops_ = 0;
};

}  // namespace agentloc::core
