#include "core/home_scheme.hpp"

#include <utility>

namespace agentloc::core {

HomeRegistryLocationScheme::HomeRegistryLocationScheme(
    platform::AgentSystem& system, MechanismConfig config)
    : system_(system), config_(config) {
  registries_.reserve(system_.node_count());
  for (net::NodeId node = 0; node < system_.node_count(); ++node) {
    registries_.push_back(&system_.create<CentralTracker>(node));
  }
}

HomeRegistryLocationScheme::HomeRegistryLocationScheme(
    ShardedTag, platform::AgentSystem& system, MechanismConfig config)
    : system_(system), config_(config) {}

std::vector<std::unique_ptr<HomeRegistryLocationScheme>>
HomeRegistryLocationScheme::build_sharded(
    const std::vector<platform::AgentSystem*>& systems,
    const MechanismConfig& config) {
  const std::size_t shards = systems.size();
  std::vector<std::unique_ptr<HomeRegistryLocationScheme>> schemes;
  schemes.reserve(shards);
  std::vector<platform::AgentAddress> addresses(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    const net::NodeId node = static_cast<net::NodeId>(s);
    schemes.emplace_back(
        new HomeRegistryLocationScheme(ShardedTag{}, *systems[s], config));
    CentralTracker& registry = systems[s]->create<CentralTracker>(node);
    schemes.back()->registries_.push_back(&registry);
    addresses[s] = platform::AgentAddress{node, registry.id()};
  }
  for (std::size_t s = 0; s < shards; ++s) {
    schemes[s]->registry_addresses_ = addresses;
  }
  return schemes;
}

platform::AgentAddress HomeRegistryLocationScheme::home_of(
    platform::AgentId agent) const {
  const auto node = static_cast<net::NodeId>(agent % home_count());
  if (!registry_addresses_.empty()) return registry_addresses_[node];
  return platform::AgentAddress{node, registries_[node]->id()};
}

LocationScheme::ClientState HomeRegistryLocationScheme::export_client_state(
    platform::AgentId agent) {
  ClientState state;
  if (const std::uint64_t* seq = seqs_.find(agent)) {
    state.seq = *seq;
    seqs_.erase(agent);
  }
  return state;
}

void HomeRegistryLocationScheme::import_client_state(platform::AgentId agent,
                                                     const ClientState& state) {
  if (state.seq != 0) seqs_[agent] = state.seq;
}

void HomeRegistryLocationScheme::register_agent(
    platform::Agent& self, std::function<void(bool)> done) {
  ++stats_.registers;
  send_register(self.id(), ++seqs_[self.id()], config_.max_locate_retries,
                std::move(done));
}

void HomeRegistryLocationScheme::update_location(
    platform::Agent& self, std::function<void(bool)> done) {
  ++stats_.updates;
  const auto node = system_.node_of(self.id());
  if (node) {
    system_.send(self.id(), home_of(self.id()),
                 UpdateRequest{LocationEntry{self.id(), *node,
                                             ++seqs_[self.id()]}},
                 UpdateRequest::kWireBytes);
  }
  done(true);
}

void HomeRegistryLocationScheme::deregister_agent(platform::Agent& self) {
  ++stats_.deregisters;
  if (!system_.node_of(self.id())) return;
  system_.send(self.id(), home_of(self.id()),
               DeregisterRequest{self.id(), ++seqs_[self.id()]},
               DeregisterRequest::kWireBytes);
  seqs_.erase(self.id());
}

void HomeRegistryLocationScheme::send_register(
    platform::AgentId self, std::uint64_t seq, int attempts_left,
    std::function<void(bool)> done) {
  const auto node = system_.node_of(self);
  if (!node || attempts_left <= 0) {
    done(false);
    return;
  }
  system_.request(
      self, home_of(self),
      RegisterRequest{LocationEntry{self, *node, seq}},
      RegisterRequest::kWireBytes,
      [this, self, seq, attempts_left,
       done = std::move(done)](platform::RpcResult result) mutable {
        if (result.ok()) {
          done(true);
          return;
        }
        ++stats_.timeout_retries;
        send_register(self, seq, attempts_left - 1, std::move(done));
      },
      config_.rpc_timeout);
}

void HomeRegistryLocationScheme::locate(
    platform::Agent& requester, platform::AgentId target,
    std::function<void(const LocateOutcome&)> done) {
  ++stats_.locates;
  locate_attempt(requester.id(), target, 1, std::move(done));
}

void HomeRegistryLocationScheme::locate_attempt(
    platform::AgentId requester, platform::AgentId target, int attempt,
    std::function<void(const LocateOutcome&)> done) {
  if (attempt > config_.max_locate_retries || !system_.node_of(requester)) {
    ++stats_.locates_failed;
    done(LocateOutcome{false, net::kNoNode, attempt - 1});
    return;
  }
  system_.request(
      requester, home_of(target), LocateRequest{target},
      LocateRequest::kWireBytes,
      [this, requester, target, attempt,
       done = std::move(done)](platform::RpcResult result) mutable {
        if (result.ok()) {
          if (const auto* reply = result.reply.body_as<LocateReply>();
              reply != nullptr && reply->status == LocateStatus::kFound) {
            ++stats_.locates_found;
            done(LocateOutcome{true, reply->node, attempt});
            return;
          }
        } else {
          ++stats_.timeout_retries;
        }
        system_.simulator().schedule_after(
            config_.transient_retry_delay,
            [this, requester, target, attempt,
             done = std::move(done)]() mutable {
              locate_attempt(requester, target, attempt + 1, std::move(done));
            });
      },
      config_.rpc_timeout);
}

}  // namespace agentloc::core
