#include "core/tracker_table.hpp"

namespace agentloc::core {

Predicate predicate_of(const hashtree::HashTree& tree,
                       hashtree::IAgentId leaf) {
  // The tree extracts (position, valid-bit) pairs straight off the node
  // path — no hyper-label segments are materialized.
  Predicate predicate;
  predicate.valid_bits = tree.valid_bits(leaf);
  return predicate;
}

bool LocationTable::apply(const LocationEntry& entry) {
  // Single hash probe: try_emplace either inserts or hands back the existing
  // slot, instead of a find followed by a second operator[] lookup.
  const auto [it, inserted] =
      entries_.try_emplace(entry.agent, Stored{entry.node, entry.seq});
  if (inserted) return true;
  if (it->second.seq >= entry.seq) return false;
  it->second = Stored{entry.node, entry.seq};
  return true;
}

bool LocationTable::remove(platform::AgentId agent, std::uint64_t seq) {
  const auto it = entries_.find(agent);
  if (it == entries_.end() || it->second.seq > seq) return false;
  entries_.erase(it);
  return true;
}

std::optional<LocationEntry> LocationTable::find(
    platform::AgentId agent) const {
  const auto it = entries_.find(agent);
  if (it == entries_.end()) return std::nullopt;
  return LocationEntry{agent, it->second.node, it->second.seq};
}

std::vector<LocationEntry> LocationTable::extract_matching(
    const Predicate& predicate) {
  std::vector<LocationEntry> extracted;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (predicate.matches(it->first)) {
      extracted.push_back(LocationEntry{it->first, it->second.node,
                                        it->second.seq});
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  return extracted;
}

std::vector<LocationEntry> LocationTable::extract_all() {
  std::vector<LocationEntry> extracted;
  extracted.reserve(entries_.size());
  for (const auto& [agent, stored] : entries_) {
    extracted.push_back(LocationEntry{agent, stored.node, stored.seq});
  }
  entries_.clear();
  return extracted;
}

std::vector<LocationEntry> LocationTable::snapshot() const {
  std::vector<LocationEntry> out;
  out.reserve(entries_.size());
  for (const auto& [agent, stored] : entries_) {
    out.push_back(LocationEntry{agent, stored.node, stored.seq});
  }
  return out;
}

void LoadWindow::record(platform::AgentId agent) {
  ++open_counts_[agent];
  ++open_total_;
}

void LoadWindow::roll() {
  closed_counts_ = std::move(open_counts_);
  closed_total_ = open_total_;
  open_counts_.clear();
  open_total_ = 0;
  ++rolls_;
}

double LoadWindow::rate() const noexcept {
  const double seconds = window_.as_seconds();
  return seconds > 0 ? static_cast<double>(closed_total_) / seconds : 0.0;
}

std::vector<AgentLoad> LoadWindow::loads() const {
  std::vector<AgentLoad> out;
  out.reserve(closed_counts_.size());
  for (const auto& [agent, count] : closed_counts_) {
    out.push_back(AgentLoad{agent, count});
  }
  return out;
}

}  // namespace agentloc::core
