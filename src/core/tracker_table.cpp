#include "core/tracker_table.hpp"

namespace agentloc::core {

Predicate predicate_of(const hashtree::HashTree& tree,
                       hashtree::IAgentId leaf) {
  // The tree extracts (position, valid-bit) pairs straight off the node
  // path — no hyper-label segments are materialized.
  Predicate predicate;
  predicate.valid_bits = tree.valid_bits(leaf);
  predicate.compile();
  return predicate;
}

bool LocationTable::apply(const LocationEntry& entry) {
  if (Stored* stored = entries_.find(entry.agent)) {
    if (stored->seq >= entry.seq) return false;
    *stored = Stored{entry.node, entry.seq};
    return true;
  }
  entries_.emplace(entry.agent, Stored{entry.node, entry.seq});
  return true;
}

bool LocationTable::remove(platform::AgentId agent, std::uint64_t seq) {
  const Stored* stored = entries_.find(agent);
  if (stored == nullptr || stored->seq > seq) return false;
  entries_.erase(agent);
  return true;
}

std::optional<LocationEntry> LocationTable::find(
    platform::AgentId agent) const {
  const Stored* stored = entries_.find(agent);
  if (stored == nullptr) return std::nullopt;
  return LocationEntry{agent, stored->node, stored->seq};
}

std::vector<LocationEntry> LocationTable::extract_matching(
    const Predicate& predicate) {
  // Single pass: `extract_if` moves every match out and recompacts the
  // survivors with one rehash, so a split-time handoff costs O(table) flat
  // instead of collect-then-erase (one probe-and-shift per moved record).
  std::vector<LocationEntry> extracted;
  entries_.extract_if(
      [&](platform::AgentId agent, const Stored&) {
        return predicate.matches(agent);
      },
      [&](platform::AgentId agent, Stored&& stored) {
        extracted.push_back(LocationEntry{agent, stored.node, stored.seq});
      });
  return extracted;
}

std::vector<LocationEntry> LocationTable::extract_all() {
  std::vector<LocationEntry> extracted;
  extracted.reserve(entries_.size());
  entries_.for_each([&](platform::AgentId agent, const Stored& stored) {
    extracted.push_back(LocationEntry{agent, stored.node, stored.seq});
  });
  entries_.clear();
  return extracted;
}

std::vector<std::vector<LocationEntry>> LocationTable::drain_partition(
    const std::vector<Predicate>& predicates) {
  std::vector<std::vector<LocationEntry>> batches(predicates.size());
  entries_.for_each([&](platform::AgentId agent, const Stored& stored) {
    for (std::size_t r = 0; r < predicates.size(); ++r) {
      if (predicates[r].matches(agent)) {
        batches[r].push_back(LocationEntry{agent, stored.node, stored.seq});
        break;
      }
    }
  });
  entries_.clear();
  return batches;
}

std::vector<LocationEntry> LocationTable::snapshot() const {
  std::vector<LocationEntry> out;
  out.reserve(entries_.size());
  entries_.for_each([&](platform::AgentId agent, const Stored& stored) {
    out.push_back(LocationEntry{agent, stored.node, stored.seq});
  });
  return out;
}

void LoadWindow::record(platform::AgentId agent) {
  ++open_counts_[agent];
  ++open_total_;
}

void LoadWindow::roll() {
  closed_counts_ = std::move(open_counts_);
  open_counts_.clear();  // restore a consistent (empty) moved-from state
  closed_total_ = open_total_;
  open_total_ = 0;
  ++rolls_;
}

double LoadWindow::rate() const noexcept {
  const double seconds = window_.as_seconds();
  return seconds > 0 ? static_cast<double>(closed_total_) / seconds : 0.0;
}

std::vector<AgentLoad> LoadWindow::loads() const {
  std::vector<AgentLoad> out;
  out.reserve(closed_counts_.size());
  closed_counts_.for_each([&](platform::AgentId agent, std::uint32_t count) {
    out.push_back(AgentLoad{agent, count});
  });
  return out;
}

}  // namespace agentloc::core
