#pragma once

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "sim/timer.hpp"

#include "core/config.hpp"
#include "core/hagent.hpp"
#include "core/lhagent.hpp"
#include "core/scheme.hpp"
#include "util/flat_map.hpp"

namespace agentloc::core {

/// The paper's mechanism, deployed: one HAgent (primary copy of the hash
/// function), one LHAgent per node (secondary copies), and a dynamically
/// changing population of IAgents, starting at one.
///
/// Client behaviour (what a mobile agent does through this object) follows
/// §2.3 and §4.3 precisely:
///  * register/update: resolve the responsible IAgent via the local
///    LHAgent, send the request; on a "not responsible" answer or an
///    unreachable IAgent, refresh the local copy from the HAgent and resend;
///  * locate: resolve, query the IAgent; on kNotResponsible refresh + retry,
///    on kTransient retry after a short delay (a handoff is completing),
///    on kFound report the node.
/// Retries are bounded by `MechanismConfig::max_locate_retries`.
class HashLocationScheme : public LocationScheme {
 public:
  HashLocationScheme(platform::AgentSystem& system, MechanismConfig config,
                     net::NodeId hagent_node = 0);

  /// Sharded deployment (DESIGN.md §16): one scheme instance per shard, over
  /// per-shard systems indexed by node (shard index == node id). The HAgent
  /// lives on `hagent_node`'s shard, the optional standby on the far shard,
  /// and each shard owns its node's LHAgent; every instance carries the full
  /// LHAgent address table so cache probes can target remote nodes. Setup is
  /// serial: IAgents bootstrap through a direct-install spawner; the caller
  /// must install a cross-LP runtime spawner on `hagent()` (and the backup)
  /// before the engine starts.
  static std::vector<std::unique_ptr<HashLocationScheme>> build_sharded(
      const std::vector<platform::AgentSystem*>& systems,
      const MechanismConfig& config, net::NodeId hagent_node = 0);

  std::string name() const override { return "hash"; }

  void register_agent(platform::Agent& self,
                      std::function<void(bool)> done) override;
  void update_location(platform::Agent& self,
                       std::function<void(bool)> done) override;
  bool handle_agent_message(platform::Agent& self,
                            const platform::Message& message) override;
  void handle_delivery_failure(
      platform::Agent& self,
      const platform::DeliveryFailure& failure) override;
  void deregister_agent(platform::Agent& self) override;
  void locate(platform::Agent& requester, platform::AgentId target,
              std::function<void(const LocateOutcome&)> done) override;

  /// Folds the per-node location-cache counters into the cache_* fields at
  /// read time (they accumulate inside each LHAgent's cache).
  const SchemeStats& stats() const noexcept override;

  /// Client seq table + every live IAgent's tables + both hash-copy tiers
  /// (HAgent primary + journal, per-node LHAgent copies, batchers, caches).
  std::size_t estimated_resident_bytes() const noexcept override;

  /// Pre-sizes the client seq table and the current IAgents' tables for an
  /// expected tracked population.
  void reserve(std::size_t agents) override;

  std::size_t tracker_count() const override {
    if (sharded_) {
      // Only the shard hosting the primary reports, so the cross-shard sum
      // equals the leaf count once (the standby shard would double it).
      return hagent_ != nullptr ? hagent_->iagent_count() : 0;
    }
    if (!system_.exists(hagent_id_) && backup_ != nullptr) {
      return backup_->iagent_count();
    }
    return hagent_->iagent_count();
  }

  /// Sharded bookkeeping: remember an IAgent installed on this shard so the
  /// resident-byte estimate and table pre-sizing can enumerate it (the tree
  /// walk only finds IAgents local to the primary's shard). Ids may go stale
  /// (retirement, locality moves) — consumers null-check the lookup.
  void note_local_iagent(platform::AgentId id) {
    known_iagents_.push_back(id);
  }

  /// Guaranteed-discovery extension (paper §6 future work): subscribe to
  /// `target`'s *next* location report. `done` fires exactly once — with the
  /// fresh entry the moment the target lands somewhere, or with
  /// `fired == false` after `MechanismConfig::watch_timeout`. Because the
  /// notification carries a location whose dwell time lies entirely ahead,
  /// a follow-up contact wins the race a plain locate can lose against an
  /// agent that moves faster than queries.
  struct WatchOutcome {
    bool fired = false;
    LocationEntry entry;
  };
  void watch(platform::Agent& requester, platform::AgentId target,
             std::function<void(const WatchOutcome&)> done);

  /// Per-agent update seq, moved with a client that crosses shards.
  ClientState export_client_state(platform::AgentId agent) override;
  void import_client_state(platform::AgentId agent,
                           const ClientState& state) override;

  /// White-box accessors for tests and benches. `hagent()` returns the
  /// coordinator that currently holds (or, before a promotion, last held)
  /// the primary role; with replication enabled, `backup_hagent()` is the
  /// standby.
  HAgent& hagent() noexcept {
    if (!system_.exists(hagent_id_) && backup_ != nullptr) return *backup_;
    return *hagent_;
  }
  HAgent* backup_hagent() noexcept { return backup_; }
  LHAgent& lhagent(net::NodeId node) { return *lhagents_.at(node); }
  const MechanismConfig& config() const noexcept { return config_; }

 private:
  struct ShardedTag {};
  HashLocationScheme(ShardedTag, platform::AgentSystem& system,
                     MechanismConfig config);

  /// The LHAgent serving `node`, addressable from any shard.
  platform::AgentAddress lhagent_address(net::NodeId node) const {
    if (sharded_) return lhagent_addresses_[node];
    return platform::AgentAddress{node, lhagents_[node]->id()};
  }

  void send_register(platform::AgentId self, std::uint64_t seq,
                     int attempts_left, std::function<void(bool)> done);

  /// Fire one one-way location report from the agent's current node.
  void send_update(platform::AgentId self);

  /// Refresh the agent's local hash copy, then resend its location.
  void refresh_and_resend_update(platform::AgentId self);

  void locate_attempt(platform::AgentId requester, platform::AgentId target,
                      int attempt, std::function<void(const LocateOutcome&)> done);

  /// Optimistic jump (DESIGN.md §12): verify a cached binding with one probe
  /// to the cached node's LHAgent; fall back to the authoritative path (and
  /// invalidate the binding) on a stale miss.
  void probe_cached_node(platform::AgentId requester, platform::AgentId target,
                         net::NodeId cached_node, int attempt,
                         std::function<void(const LocateOutcome&)> done);

  /// The authoritative leg: one LocateRequest RPC to the responsible IAgent
  /// (or, with singleflight enabled, a seat on an already-in-flight one).
  void locate_via_iagent(platform::AgentId requester, platform::AgentId target,
                         int attempt,
                         std::function<void(const LocateOutcome&)> done);

  /// Shared continuation for every waiter of a locate RPC.
  void handle_locate_reply(platform::AgentId requester,
                           platform::AgentId target, int attempt,
                           std::function<void(const LocateOutcome&)> done,
                           const platform::RpcResult& result);

  /// Give up on a locate: count the failure and, when negative entries are
  /// enabled, remember the absence so repeat queries short-circuit.
  void fail_locate(platform::AgentId requester, platform::AgentId target,
                   int attempts,
                   const std::function<void(const LocateOutcome&)>& done);

  void watch_attempt(platform::AgentId requester, platform::AgentId target,
                     int attempt,
                     std::function<void(const WatchOutcome&)> done);
  void arm_watch(platform::AgentId requester, platform::AgentId target,
                 std::function<void(const WatchOutcome&)> done);

  /// The LHAgent co-located with an agent, by its current node.
  LHAgent* local_lhagent(platform::AgentId agent);

  struct PendingWatch {
    std::uint64_t token = 0;
    platform::AgentId requester = platform::kNoAgent;
    platform::AgentId target = platform::kNoAgent;
    std::function<void(const WatchOutcome&)> done;
    std::unique_ptr<sim::Timeout> timeout;
  };

  /// Singleflight locate coalescing (opt-in; DESIGN.md §12): waiters of an
  /// in-flight (node, target) LocateRequest, keyed exactly — coalescing on a
  /// hash could merge distinct targets. `std::map` keeps the footprint
  /// proportional to the handful of RPCs in flight at once.
  using FlightKey = std::pair<net::NodeId, platform::AgentId>;
  using FlightWaiter = std::function<void(const platform::RpcResult&)>;

  platform::AgentSystem& system_;
  MechanismConfig config_;
  HAgent* hagent_ = nullptr;
  // The primary's id, cached so liveness checks never touch `*hagent_`,
  // which dangles once the primary is disposed (e.g. in failover tests).
  platform::AgentId hagent_id_ = platform::kNoAgent;
  HAgent* backup_ = nullptr;
  std::vector<LHAgent*> lhagents_;  ///< sharded: non-null at own node only
  /// Sharded deployment state (empty/false in the single-system case).
  bool sharded_ = false;
  std::vector<platform::AgentAddress> lhagent_addresses_;
  std::vector<platform::AgentId> known_iagents_;
  std::size_t sharded_total_iagents_ = 0;  ///< leaf count at build time
  /// Per-agent update sequence numbers. Open-addressing flat storage: at
  /// million-agent populations this table holds one slot per tracked agent,
  /// so the node-and-bucket overhead of `std::unordered_map` (~56 bytes per
  /// entry) would rival the payload; a FlatMap slot is 16 bytes.
  util::FlatMap<platform::AgentId, std::uint64_t, platform::kNoAgent> seqs_;
  std::vector<std::unique_ptr<PendingWatch>> pending_watches_;
  std::uint64_t watch_tokens_ = 0;
  std::map<FlightKey, std::vector<FlightWaiter>> locate_flights_;
};

}  // namespace agentloc::core
