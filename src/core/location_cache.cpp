#include "core/location_cache.hpp"

#include "util/rng.hpp"  // mix64

namespace agentloc::core {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 8;  // at least two 4-way sets
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

LocationCache::LocationCache(std::size_t capacity, sim::SimTime ttl,
                             bool negative_entries)
    : slots_(round_up_pow2(capacity)),
      hands_(slots_.size() / kWays, 0),
      ttl_(ttl),
      negative_entries_(negative_entries) {}

std::size_t LocationCache::set_base(platform::AgentId agent) const noexcept {
  const std::size_t set_count = slots_.size() / kWays;
  const auto set =
      static_cast<std::size_t>(util::mix64(agent)) & (set_count - 1);
  return set * kWays;
}

LocationCache::Slot* LocationCache::find_slot(
    platform::AgentId agent) noexcept {
  const std::size_t base = set_base(agent);
  for (std::size_t w = 0; w < kWays; ++w) {
    if (slots_[base + w].agent == agent) return &slots_[base + w];
  }
  return nullptr;
}

void LocationCache::clear_slot(Slot& slot) noexcept {
  slot = Slot{};
  --size_;
}

std::optional<LocationCache::Hit> LocationCache::lookup(
    platform::AgentId agent, sim::SimTime now) {
  Slot* slot = find_slot(agent);
  if (slot == nullptr) {
    ++stats_.misses;
    return std::nullopt;
  }
  if (slot->expiry <= now) {
    ++stats_.expirations;
    ++stats_.misses;
    clear_slot(*slot);
    return std::nullopt;
  }
  slot->referenced = true;
  if (slot->negative) {
    ++stats_.negative_hits;
  } else {
    ++stats_.hits;
  }
  return Hit{slot->node, slot->seq, slot->negative};
}

LocationCache::Slot& LocationCache::victim_slot(std::size_t base,
                                                sim::SimTime now) {
  // Empty or expired slots first — recycling them is free.
  for (std::size_t w = 0; w < kWays; ++w) {
    Slot& slot = slots_[base + w];
    if (slot.agent == platform::kNoAgent) return slot;
    if (slot.expiry <= now) {
      ++stats_.expirations;
      clear_slot(slot);
      return slot;
    }
  }
  // CLOCK second-chance within the set: sweep from the hand, clearing
  // reference bits; the first slot found clear is the victim. Two sweeps
  // bound the scan — after one full pass every bit is clear.
  std::uint8_t& hand = hands_[base / kWays];
  for (std::size_t step = 0; step < 2 * kWays; ++step) {
    Slot& slot = slots_[base + hand];
    hand = static_cast<std::uint8_t>((hand + 1) % kWays);
    if (slot.referenced) {
      slot.referenced = false;
      continue;
    }
    ++stats_.evictions;
    clear_slot(slot);
    return slot;
  }
  Slot& slot = slots_[base];  // unreachable; the second sweep always lands
  ++stats_.evictions;
  clear_slot(slot);
  return slot;
}

void LocationCache::store(const LocationEntry& entry, sim::SimTime now) {
  if (entry.agent == platform::kNoAgent) return;
  if (Slot* slot = find_slot(entry.agent)) {
    // Newest-seq-wins, mirroring the IAgent table: a reordered older report
    // must not roll the binding back. Negative entries carry no mover seq,
    // so any positive binding overrides them; an expired binding's seq is
    // void (the agent may have re-registered with a fresh sequence).
    if (slot->expiry > now && !slot->negative && entry.seq < slot->seq) {
      ++stats_.stale_stores;
      return;
    }
    slot->node = entry.node;
    slot->seq = entry.seq;
    slot->expiry = now + ttl_;
    slot->referenced = true;
    slot->negative = false;
    ++stats_.stores;
    return;
  }
  Slot& slot = victim_slot(set_base(entry.agent), now);
  slot.agent = entry.agent;
  slot.node = entry.node;
  slot.seq = entry.seq;
  slot.expiry = now + ttl_;
  slot.referenced = true;
  slot.negative = false;
  ++size_;
  ++stats_.stores;
}

void LocationCache::store_negative(platform::AgentId agent, sim::SimTime now) {
  if (!negative_entries_ || agent == platform::kNoAgent) return;
  Slot* slot = find_slot(agent);
  if (slot == nullptr) {
    slot = &victim_slot(set_base(agent), now);
    slot->agent = agent;
    ++size_;
  }
  slot->node = net::kNoNode;
  slot->seq = 0;
  slot->expiry = now + ttl_;
  slot->referenced = true;
  slot->negative = true;
  ++stats_.stores;
}

bool LocationCache::invalidate(platform::AgentId agent) {
  Slot* slot = find_slot(agent);
  if (slot == nullptr) return false;
  clear_slot(*slot);
  ++stats_.invalidations;
  return true;
}

void LocationCache::note_stale(platform::AgentId agent) {
  ++stats_.stale_hits;
  invalidate(agent);
}

}  // namespace agentloc::core
