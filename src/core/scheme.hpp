#pragma once

#include <functional>
#include <string>

#include "platform/agent_system.hpp"

namespace agentloc::core {

/// Result handed to a locate caller.
struct LocateOutcome {
  bool found = false;
  net::NodeId node = net::kNoNode;
  /// Request/response cycles spent (1 = first try succeeded).
  int attempts = 0;
};

/// Client-side counters, common to every scheme. The cache_* block and the
/// coalescing counters are only ever non-zero for `HashLocationScheme` with
/// the matching extension enabled (DESIGN.md §12).
struct SchemeStats {
  std::uint64_t registers = 0;
  std::uint64_t updates = 0;
  std::uint64_t deregisters = 0;
  std::uint64_t locates = 0;
  std::uint64_t locates_found = 0;
  std::uint64_t locates_failed = 0;
  std::uint64_t stale_retries = 0;      ///< wrong-IAgent bounces (§4.3)
  std::uint64_t transient_retries = 0;  ///< handoff-in-flight retries
  std::uint64_t delivery_retries = 0;   ///< unreachable tracker (it moved)
  std::uint64_t timeout_retries = 0;    ///< lost message / missed deadline
  std::uint64_t refreshes_triggered = 0;

  /// LocateRequest RPCs actually put on the wire toward an IAgent —
  /// locates() minus what the cache and singleflight absorbed, plus retries.
  std::uint64_t locate_rpcs = 0;
  /// Locates answered by a verified optimistic jump (no IAgent involved).
  std::uint64_t optimistic_locates = 0;
  /// Locates that joined another in-flight IAgent RPC instead of paying for
  /// their own (singleflight coalescing).
  std::uint64_t locates_coalesced = 0;

  /// Location-cache counters, aggregated across every node's cache.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_stale_hits = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t cache_invalidations = 0;
};

/// A mobile-agent location mechanism, as seen by the agents that use it.
///
/// The workload layer drives each scheme identically — register on creation,
/// update after each migration, locate on demand — so the paper's
/// experiments compare schemes by swapping this object only. Implementations:
/// `HashLocationScheme` (the paper's mechanism), `CentralizedLocationScheme`
/// (the paper's §5 baseline), `HomeRegistryLocationScheme` (Ajanta-style,
/// §6) and `ForwardingLocationScheme` (Voyager-style, §6).
///
/// All calls are made *by* the agent in question (`self` must be hosted and
/// active); completions are asynchronous simulator callbacks.
class LocationScheme {
 public:
  virtual ~LocationScheme() = default;

  virtual std::string name() const = 0;

  /// Announce a newly created agent. `done(true)` once the scheme accepted
  /// the registration (false after retries were exhausted).
  virtual void register_agent(platform::Agent& self,
                              std::function<void(bool)> done) = 0;

  /// Report `self`'s new location after a migration. One-way in the common
  /// case (the paper's §2.3 semantics): `done(true)` means the report was
  /// sent, not that it was applied — error paths self-correct through
  /// `handle_agent_message` / `handle_delivery_failure`.
  virtual void update_location(platform::Agent& self,
                               std::function<void(bool)> done) = 0;

  /// Tracked agents forward messages they don't recognize here (e.g. a
  /// wrong-IAgent notice). Returns true when the scheme consumed it.
  virtual bool handle_agent_message(platform::Agent& self,
                                    const platform::Message& message) {
    (void)self;
    (void)message;
    return false;
  }

  /// Tracked agents forward platform bounce notices here (e.g. a one-way
  /// update that chased a migrated IAgent).
  virtual void handle_delivery_failure(platform::Agent& self,
                                       const platform::DeliveryFailure& failure) {
    (void)self;
    (void)failure;
  }

  /// Remove `self` from the mechanism (call before disposing).
  virtual void deregister_agent(platform::Agent& self) = 0;

  /// Find the current location of `target` on behalf of `requester`.
  virtual void locate(platform::Agent& requester, platform::AgentId target,
                      std::function<void(const LocateOutcome&)> done) = 0;

  /// Number of tracking agents currently deployed (IAgents for the hash
  /// scheme, 1 for the centralized baseline, #nodes for per-node schemes).
  virtual std::size_t tracker_count() const = 0;

  /// Virtual so schemes carrying distributed counters (the hash scheme's
  /// per-node caches) can fold them in at read time.
  virtual const SchemeStats& stats() const noexcept { return stats_; }

  /// Allocated bytes of the scheme-side tracking state: location tables,
  /// per-client sequence counters, caches, batchers. Complements
  /// `AgentSystem::estimated_resident_bytes` (which counts platform records
  /// and inboxes but cannot see inside tracker agents) so bytes-per-agent
  /// reporting covers the whole mechanism.
  virtual std::size_t estimated_resident_bytes() const noexcept { return 0; }

  /// Pre-size scheme tables for an expected tracked population (mirrors
  /// `AgentSystem::reserve`) — bulk registration at million-agent scale
  /// would otherwise rehash every table repeatedly.
  virtual void reserve(std::size_t agents) { (void)agents; }

  /// --- Sharded deployments (DESIGN.md §16) ------------------------------
  /// Per-agent client-side state a scheme keeps on the agent's node (update
  /// sequence number; the forwarding scheme also remembers the last node a
  /// pointer was planted on). When an agent migrates to a node another
  /// shard's scheme instance serves, the host moves this state with it:
  /// `export_client_state` on the source shard (erasing the entry there),
  /// `import_client_state` on the destination, between `adopt_migrated` and
  /// `notify_arrival`.
  struct ClientState {
    std::uint64_t seq = 0;
    net::NodeId last_node = net::kNoNode;
  };

  virtual ClientState export_client_state(platform::AgentId agent) {
    (void)agent;
    return {};
  }
  virtual void import_client_state(platform::AgentId agent,
                                   const ClientState& state) {
    (void)agent;
    (void)state;
  }

 protected:
  SchemeStats stats_;
};

}  // namespace agentloc::core
