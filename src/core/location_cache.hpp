#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/protocol.hpp"
#include "sim/time.hpp"

namespace agentloc::core {

/// Counters exposed through `SchemeStats` (cache_* fields) and the cache
/// ablation bench.
struct LocationCacheStats {
  std::uint64_t hits = 0;            ///< positive lookups inside TTL
  std::uint64_t negative_hits = 0;   ///< negative-entry lookups inside TTL
  std::uint64_t misses = 0;          ///< absent, expired, or evicted entries
  std::uint64_t stale_hits = 0;      ///< hits refuted by the verify probe
  std::uint64_t evictions = 0;       ///< live entries displaced by CLOCK
  std::uint64_t invalidations = 0;   ///< explicit removals (incl. stale)
  std::uint64_t expirations = 0;     ///< entries dropped on TTL expiry
  std::uint64_t stores = 0;          ///< accepted inserts/overwrites
  std::uint64_t stale_stores = 0;    ///< stores refused by newest-seq-wins
};

/// Per-node cache of (agent → node) location bindings (DESIGN.md §12).
///
/// Owned by each LHAgent when `MechanismConfig::location_cache.enabled` is
/// set: every LocateReply, WatchNotify, and co-located mover report the node
/// sees anyway deposits a binding here, and the locate path consults it to
/// skip the authoritative IAgent round trip (the optimistic jump — verified
/// at the cached node, so a stale binding costs one extra hop, never a wrong
/// answer).
///
/// Layout: fixed-capacity open addressing, FlatMap-style (power-of-two slot
/// array, `mix64` home slots), organized as 4-way sets so displacement never
/// breaks probe chains: a key only ever lives in one of the four slots of its
/// set. Insertion into a full set runs CLOCK second-chance over the set — a
/// per-set hand sweeps, clearing reference bits until it finds a slot whose
/// bit is already clear — so repeatedly-hit bindings (the Zipf head the cache
/// exists for) survive while one-shot lookups recycle.
///
/// Bindings are ordered by the mover's sequence number: `store` refuses any
/// binding older than the one cached (newest-seq-wins, the same rule the
/// IAgent table applies), so reordered replies cannot roll a binding back.
/// Entries expire `ttl` after their last store; expiry counts as a miss and
/// frees the slot.
class LocationCache {
 public:
  /// `capacity` is rounded up to a power of two ≥ 8 slots; `ttl` bounds the
  /// sim-time age of every binding. `negative_entries` admits "known absent"
  /// bindings (see `store_negative`).
  LocationCache(std::size_t capacity, sim::SimTime ttl, bool negative_entries);

  struct Hit {
    net::NodeId node = net::kNoNode;
    std::uint64_t seq = 0;
    bool negative = false;
  };

  /// Probe the cache at sim-time `now`. Counts one hit or one miss; an
  /// expired entry is dropped and counted as a miss (plus an expiration).
  std::optional<Hit> lookup(platform::AgentId agent, sim::SimTime now);

  /// Deposit a positive binding, newest-seq-wins. An equal-or-newer seq
  /// overwrites (refreshing the TTL); an older one is dropped.
  void store(const LocationEntry& entry, sim::SimTime now);

  /// Deposit a "known absent" binding (the authoritative IAgent answered
  /// kUnknown). No-op unless negative entries were enabled. Overwrites any
  /// positive binding: the authority just denied the agent exists.
  void store_negative(platform::AgentId agent, sim::SimTime now);

  /// Drop the binding for `agent`, if cached. Returns whether one existed.
  bool invalidate(platform::AgentId agent);

  /// A verify probe refuted the cached binding: count the stale hit and drop
  /// the entry so the authoritative answer repopulates it.
  void note_stale(platform::AgentId agent);

  std::size_t size() const noexcept { return size_; }
  std::size_t capacity() const noexcept { return slots_.size(); }
  sim::SimTime ttl() const noexcept { return ttl_; }
  const LocationCacheStats& stats() const noexcept { return stats_; }

  /// Allocated bytes of the slot array and CLOCK hands.
  std::size_t resident_bytes() const noexcept {
    return slots_.capacity() * sizeof(Slot) +
           hands_.capacity() * sizeof(std::uint8_t);
  }

 private:
  struct Slot {
    platform::AgentId agent = platform::kNoAgent;
    std::uint64_t seq = 0;
    sim::SimTime expiry = sim::SimTime::zero();
    net::NodeId node = net::kNoNode;
    bool referenced = false;
    bool negative = false;
  };

  static constexpr std::size_t kWays = 4;

  std::size_t set_base(platform::AgentId agent) const noexcept;
  Slot* find_slot(platform::AgentId agent) noexcept;
  void clear_slot(Slot& slot) noexcept;

  /// Pick the victim slot of `agent`'s set: an empty or expired slot if one
  /// exists, else CLOCK second-chance from the set's hand.
  Slot& victim_slot(std::size_t base, sim::SimTime now);

  std::vector<Slot> slots_;
  std::vector<std::uint8_t> hands_;  ///< per-set CLOCK hand, in [0, kWays)
  std::size_t size_ = 0;
  sim::SimTime ttl_;
  bool negative_entries_;
  LocationCacheStats stats_;
};

}  // namespace agentloc::core
