#include "core/hash_scheme.hpp"

#include <utility>

#include "util/logging.hpp"

namespace agentloc::core {

HashLocationScheme::HashLocationScheme(platform::AgentSystem& system,
                                       MechanismConfig config,
                                       net::NodeId hagent_node)
    : system_(system), config_(config) {
  hagent_ = &system_.create<HAgent>(hagent_node, config_);
  hagent_id_ = hagent_->id();
  const platform::AgentAddress hagent_address{hagent_node, hagent_id_};
  std::vector<platform::AgentAddress> coordinators{hagent_address};

  if (config_.hagent_replication) {
    // §7 fault-tolerance extension: a standby replica, placed away from the
    // primary, streams the primary copy op-by-op and takes over on demand.
    const net::NodeId backup_node = static_cast<net::NodeId>(
        (hagent_node + system_.node_count() / 2) % system_.node_count());
    backup_ = &system_.create<HAgent>(backup_node, config_);
    const platform::AgentAddress backup_address{backup_node, backup_->id()};
    hagent_->set_backup(backup_address);
    coordinators.push_back(backup_address);
  }

  const net::NodeId first_iagent_node =
      static_cast<net::NodeId>((hagent_node + 1) % system_.node_count());
  hagent_->bootstrap(first_iagent_node);
  if (backup_ != nullptr) {
    backup_->bootstrap_follower(hagent_address, hagent_->tree());
  }

  lhagents_.reserve(system_.node_count());
  for (net::NodeId node = 0; node < system_.node_count(); ++node) {
    LHAgent& lhagent = system_.create<LHAgent>(
        node, coordinators, hagent_->tree(), config_.failover_threshold);
    if (config_.update_batching) {
      lhagent.enable_update_batching(config_.batch_flush_interval,
                                     config_.batch_max_entries);
    }
    lhagents_.push_back(&lhagent);
  }
}

LHAgent* HashLocationScheme::local_lhagent(platform::AgentId agent) {
  const auto node = system_.node_of(agent);
  if (!node) return nullptr;  // caller is mid-migration; abort the attempt
  return lhagents_[*node];
}

void HashLocationScheme::register_agent(platform::Agent& self,
                                        std::function<void(bool)> done) {
  ++stats_.registers;
  send_register(self.id(), ++seqs_[self.id()], config_.max_locate_retries,
                std::move(done));
}

void HashLocationScheme::update_location(platform::Agent& self,
                                         std::function<void(bool)> done) {
  ++stats_.updates;
  send_update(self.id());
  // One-way semantics: "sent" is all the mover learns (paper Â§2.3); the
  // error paths come back through handle_agent_message / bounce notices.
  done(true);
}

bool HashLocationScheme::handle_agent_message(
    platform::Agent& self, const platform::Message& message) {
  if (const auto* notify = message.body_as<WatchNotify>()) {
    // Fire every pending watch of this (requester, target) pair.
    for (std::size_t i = 0; i < pending_watches_.size();) {
      PendingWatch& pending = *pending_watches_[i];
      if (pending.requester == self.id() &&
          pending.target == notify->entry.agent) {
        auto done = std::move(pending.done);
        pending_watches_.erase(pending_watches_.begin() +
                               static_cast<std::ptrdiff_t>(i));
        WatchOutcome outcome;
        outcome.fired = true;
        outcome.entry = notify->entry;
        done(outcome);
      } else {
        ++i;
      }
    }
    return true;
  }
  if (const auto* notice = message.body_as<NotResponsibleNotice>()) {
    // Paper Â§4.3 trigger (i): our last update reached an IAgent that no
    // longer serves us. Refresh the local copy and resend.
    if (notice->agent == self.id()) {
      ++stats_.stale_retries;
      refresh_and_resend_update(self.id());
    }
    return true;
  }
  return false;
}

void HashLocationScheme::handle_delivery_failure(
    platform::Agent& self, const platform::DeliveryFailure& failure) {
  (void)failure;
  // A one-way update chased an IAgent that migrated or retired; the node in
  // our copy is stale.
  ++stats_.delivery_retries;
  refresh_and_resend_update(self.id());
}

void HashLocationScheme::deregister_agent(platform::Agent& self) {
  ++stats_.deregisters;
  LHAgent* lhagent = local_lhagent(self.id());
  if (lhagent == nullptr) return;
  const auto target = lhagent->resolve(self.id());
  system_.send(self.id(), target,
               DeregisterRequest{self.id(), ++seqs_[self.id()]},
               DeregisterRequest::kWireBytes);
  seqs_.erase(self.id());
}

void HashLocationScheme::send_update(platform::AgentId self) {
  LHAgent* lhagent = local_lhagent(self);
  const auto node = system_.node_of(self);
  if (lhagent == nullptr || !node) return;  // moved on; next arrival reports
  const LocationEntry entry{self, *node, ++seqs_[self]};
  if (config_.update_batching) {
    // Hand the report to the co-located LHAgent (same-node IPC, free by the
    // DESIGN.md §2 cost model); it coalesces reports from every local mover
    // and flushes one BatchedUpdate per responsible IAgent.
    lhagent->enqueue_update(entry);
    return;
  }
  system_.send(self, lhagent->resolve(self), UpdateRequest{entry},
               UpdateRequest::kWireBytes);
}

void HashLocationScheme::refresh_and_resend_update(platform::AgentId self) {
  ++stats_.refreshes_triggered;
  LHAgent* lhagent = local_lhagent(self);
  if (lhagent == nullptr) return;
  lhagent->refresh([this, self] { send_update(self); });
}

void HashLocationScheme::send_register(platform::AgentId self,
                                       std::uint64_t seq, int attempts_left,
                                       std::function<void(bool)> done) {
  LHAgent* lhagent = local_lhagent(self);
  const auto node = system_.node_of(self);
  if (lhagent == nullptr || !node) {
    done(false);
    return;
  }
  if (attempts_left <= 0) {
    AGENTLOC_LOG(kWarn, "hash-scheme")
        << "registration for agent " << self << " gave up";
    done(false);
    return;
  }

  const LocationEntry entry{self, *node, seq};
  const platform::AgentAddress target = lhagent->resolve(self);
  system_.request(
      self, target, RegisterRequest{entry}, RegisterRequest::kWireBytes,
      [this, self, seq, attempts_left,
       done = std::move(done)](platform::RpcResult result) mutable {
        if (result.ok()) {
          if (const auto* ack = result.reply.body_as<UpdateAck>();
              ack != nullptr && ack->responsible) {
            done(true);
            return;
          }
          ++stats_.stale_retries;
        } else if (result.status ==
                   platform::RpcResult::Status::kDeliveryFailure) {
          ++stats_.delivery_retries;
        } else {
          // Timeout: slow, not stale. Retry without refreshing.
          ++stats_.timeout_retries;
          send_register(self, seq, attempts_left - 1, std::move(done));
          return;
        }
        ++stats_.refreshes_triggered;
        LHAgent* lhagent_now = local_lhagent(self);
        if (lhagent_now == nullptr) {
          done(false);
          return;
        }
        lhagent_now->refresh([this, self, seq, attempts_left,
                              done = std::move(done)]() mutable {
          send_register(self, seq, attempts_left - 1, std::move(done));
        });
      },
      config_.rpc_timeout);
}

void HashLocationScheme::watch(platform::Agent& requester,
                               platform::AgentId target,
                               std::function<void(const WatchOutcome&)> done) {
  watch_attempt(requester.id(), target, 1, std::move(done));
}

void HashLocationScheme::watch_attempt(
    platform::AgentId requester, platform::AgentId target, int attempt,
    std::function<void(const WatchOutcome&)> done) {
  LHAgent* lhagent = local_lhagent(requester);
  if (attempt > config_.max_locate_retries || lhagent == nullptr) {
    done(WatchOutcome{});
    return;
  }
  system_.request(
      requester, lhagent->resolve(target), WatchRequest{target},
      WatchRequest::kWireBytes,
      [this, requester, target, attempt,
       done = std::move(done)](platform::RpcResult result) mutable {
        const auto* reply =
            result.ok() ? result.reply.body_as<LocateReply>() : nullptr;
        if (reply != nullptr &&
            (reply->status == LocateStatus::kFound ||
             reply->status == LocateStatus::kUnknown)) {
          // Armed at the responsible IAgent; wait for the WatchNotify.
          arm_watch(requester, target, std::move(done));
          return;
        }
        if (reply != nullptr &&
            reply->status == LocateStatus::kNotResponsible) {
          ++stats_.stale_retries;
        } else if (!result.ok() &&
                   result.status ==
                       platform::RpcResult::Status::kDeliveryFailure) {
          ++stats_.delivery_retries;
        } else if (!result.ok()) {
          ++stats_.timeout_retries;
          watch_attempt(requester, target, attempt + 1, std::move(done));
          return;
        }
        ++stats_.refreshes_triggered;
        LHAgent* lhagent_now = local_lhagent(requester);
        if (lhagent_now == nullptr) {
          done(WatchOutcome{});
          return;
        }
        lhagent_now->refresh([this, requester, target, attempt,
                              done = std::move(done)]() mutable {
          watch_attempt(requester, target, attempt + 1, std::move(done));
        });
      },
      config_.rpc_timeout);
}

void HashLocationScheme::arm_watch(
    platform::AgentId requester, platform::AgentId target,
    std::function<void(const WatchOutcome&)> done) {
  auto pending = std::make_unique<PendingWatch>();
  PendingWatch* raw = pending.get();
  pending->token = ++watch_tokens_;
  pending->requester = requester;
  pending->target = target;
  pending->done = std::move(done);
  pending->timeout = std::make_unique<sim::Timeout>(system_.simulator());
  pending->timeout->arm(config_.watch_timeout, [this, token = raw->token] {
    for (std::size_t i = 0; i < pending_watches_.size(); ++i) {
      if (pending_watches_[i]->token == token) {
        auto expired = std::move(pending_watches_[i]);
        pending_watches_.erase(pending_watches_.begin() +
                               static_cast<std::ptrdiff_t>(i));
        expired->done(WatchOutcome{});
        return;
      }
    }
  });
  pending_watches_.push_back(std::move(pending));
}

void HashLocationScheme::locate(platform::Agent& requester,
                                platform::AgentId target,
                                std::function<void(const LocateOutcome&)> done) {
  ++stats_.locates;
  locate_attempt(requester.id(), target, 1, std::move(done));
}

void HashLocationScheme::locate_attempt(
    platform::AgentId requester, platform::AgentId target, int attempt,
    std::function<void(const LocateOutcome&)> done) {
  if (attempt > config_.max_locate_retries) {
    ++stats_.locates_failed;
    done(LocateOutcome{false, net::kNoNode, attempt - 1});
    return;
  }
  LHAgent* lhagent = local_lhagent(requester);
  if (lhagent == nullptr) {
    ++stats_.locates_failed;
    done(LocateOutcome{false, net::kNoNode, attempt - 1});
    return;
  }

  const platform::AgentAddress address = lhagent->resolve(target);
  system_.request(
      requester, address, LocateRequest{target}, LocateRequest::kWireBytes,
      [this, requester, target, attempt,
       done = std::move(done)](platform::RpcResult result) mutable {
        auto refresh_and_retry = [&]() mutable {
          ++stats_.refreshes_triggered;
          LHAgent* lhagent_now = local_lhagent(requester);
          if (lhagent_now == nullptr) {
            ++stats_.locates_failed;
            done(LocateOutcome{false, net::kNoNode, attempt});
            return;
          }
          lhagent_now->refresh([this, requester, target, attempt,
                                done = std::move(done)]() mutable {
            locate_attempt(requester, target, attempt + 1, std::move(done));
          });
        };

        if (!result.ok()) {
          if (result.status == platform::RpcResult::Status::kDeliveryFailure) {
            // The IAgent is not at the node our copy recorded: stale copy.
            ++stats_.delivery_retries;
            refresh_and_retry();
          } else {
            // Timeout: slow or lossy, not stale — retry without refreshing.
            ++stats_.timeout_retries;
            locate_attempt(requester, target, attempt + 1, std::move(done));
          }
          return;
        }
        const auto* reply = result.reply.body_as<LocateReply>();
        if (reply == nullptr) {
          ++stats_.locates_failed;
          done(LocateOutcome{false, net::kNoNode, attempt});
          return;
        }
        switch (reply->status) {
          case LocateStatus::kFound:
            ++stats_.locates_found;
            done(LocateOutcome{true, reply->node, attempt});
            return;
          case LocateStatus::kNotResponsible:
            // Paper §4.3 trigger (ii).
            ++stats_.stale_retries;
            refresh_and_retry();
            return;
          case LocateStatus::kTransient:
            // Handoff in flight: the mapping is current, just early. Retry
            // without refreshing.
            ++stats_.transient_retries;
            system_.simulator().schedule_after(
                config_.transient_retry_delay,
                [this, requester, target, attempt,
                 done = std::move(done)]() mutable {
                  locate_attempt(requester, target, attempt + 1,
                                 std::move(done));
                });
            return;
          case LocateStatus::kUnknown:
            // Either the target never existed or our copy routed us to an
            // IAgent that never received the handoff; one refresh cycle
            // settles which.
            refresh_and_retry();
            return;
        }
      },
      config_.rpc_timeout);
}

}  // namespace agentloc::core
