#include "core/hash_scheme.hpp"

#include <utility>

#include "core/iagent.hpp"
#include "util/logging.hpp"

namespace agentloc::core {

HashLocationScheme::HashLocationScheme(platform::AgentSystem& system,
                                       MechanismConfig config,
                                       net::NodeId hagent_node)
    : system_(system), config_(config) {
  hagent_ = &system_.create<HAgent>(hagent_node, config_);
  hagent_id_ = hagent_->id();
  const platform::AgentAddress hagent_address{hagent_node, hagent_id_};
  std::vector<platform::AgentAddress> coordinators{hagent_address};

  if (config_.hagent_replication) {
    // §7 fault-tolerance extension: a standby replica, placed away from the
    // primary, streams the primary copy op-by-op and takes over on demand.
    const net::NodeId backup_node = static_cast<net::NodeId>(
        (hagent_node + system_.node_count() / 2) % system_.node_count());
    backup_ = &system_.create<HAgent>(backup_node, config_);
    const platform::AgentAddress backup_address{backup_node, backup_->id()};
    hagent_->set_backup(backup_address);
    coordinators.push_back(backup_address);
  }

  const net::NodeId first_iagent_node =
      static_cast<net::NodeId>((hagent_node + 1) % system_.node_count());
  hagent_->bootstrap(first_iagent_node);
  if (backup_ != nullptr) {
    backup_->bootstrap_follower(hagent_address, hagent_->tree());
  }

  lhagents_.reserve(system_.node_count());
  for (net::NodeId node = 0; node < system_.node_count(); ++node) {
    LHAgent& lhagent = system_.create<LHAgent>(
        node, coordinators, hagent_->tree(), config_.failover_threshold);
    if (config_.update_batching) {
      lhagent.enable_update_batching(config_.batch_flush_interval,
                                     config_.batch_max_entries);
    }
    if (config_.location_cache.enabled) {
      lhagent.enable_location_cache(config_.location_cache);
    }
    lhagents_.push_back(&lhagent);
  }
}

HashLocationScheme::HashLocationScheme(ShardedTag,
                                       platform::AgentSystem& system,
                                       MechanismConfig config)
    : system_(system), config_(config), sharded_(true) {}

std::vector<std::unique_ptr<HashLocationScheme>>
HashLocationScheme::build_sharded(
    const std::vector<platform::AgentSystem*>& systems,
    const MechanismConfig& config, net::NodeId hagent_node) {
  const std::size_t shards = systems.size();
  std::vector<std::unique_ptr<HashLocationScheme>> schemes;
  schemes.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    schemes.emplace_back(
        new HashLocationScheme(ShardedTag{}, *systems[s], config));
    schemes.back()->lhagents_.assign(shards, nullptr);
  }

  // Coordinator tier: the primary HAgent on its owner shard, the optional
  // standby on the far shard. Setup is serial, so cross-shard wiring here is
  // plain function calls.
  HashLocationScheme& owner = *schemes[hagent_node];
  HAgent& hagent = systems[hagent_node]->create<HAgent>(hagent_node, config);
  owner.hagent_ = &hagent;
  owner.hagent_id_ = hagent.id();
  const platform::AgentAddress hagent_address{hagent_node, hagent.id()};
  std::vector<platform::AgentAddress> coordinators{hagent_address};

  HAgent* backup = nullptr;
  if (config.hagent_replication) {
    const net::NodeId backup_node =
        static_cast<net::NodeId>((hagent_node + shards / 2) % shards);
    backup = &systems[backup_node]->create<HAgent>(backup_node, config);
    schemes[backup_node]->backup_ = backup;
    const platform::AgentAddress backup_address{backup_node, backup->id()};
    hagent.set_backup(backup_address);
    coordinators.push_back(backup_address);
  }

  // Bootstrap through a setup-time spawner: mint the id on the shard owning
  // the IAgent's node (globally unique via the id stride/salt partition) and
  // install the object directly — legal while the engine has not started.
  // The caller replaces this hook with a cross-LP one before running.
  hagent.set_iagent_spawner(
      [&systems, &schemes](net::NodeId node, const MechanismConfig& cfg,
                           std::vector<platform::AgentAddress> coords) {
        platform::AgentSystem& host_system = *systems[node];
        const platform::AgentId id = host_system.mint_id();
        host_system.install_spawned(
            std::make_unique<IAgent>(cfg, std::move(coords)), id, node);
        schemes[node]->note_local_iagent(id);
        return id;
      });
  const net::NodeId first_iagent_node =
      static_cast<net::NodeId>((hagent_node + 1) % shards);
  hagent.bootstrap(first_iagent_node);
  hagent.set_iagent_spawner({});
  if (backup != nullptr) {
    backup->bootstrap_follower(hagent_address, hagent.tree());
  }

  // Secondary-copy tier: each shard creates and owns its node's LHAgent;
  // every instance then gets the full address table (the optimistic-jump
  // probe targets the cached node's LHAgent, wherever it lives).
  std::vector<platform::AgentAddress> addresses(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    const net::NodeId node = static_cast<net::NodeId>(s);
    LHAgent& lhagent = systems[s]->create<LHAgent>(
        node, coordinators, hagent.tree(), config.failover_threshold);
    if (config.update_batching) {
      lhagent.enable_update_batching(config.batch_flush_interval,
                                     config.batch_max_entries);
    }
    if (config.location_cache.enabled) {
      lhagent.enable_location_cache(config.location_cache);
    }
    schemes[s]->lhagents_[s] = &lhagent;
    addresses[s] = platform::AgentAddress{node, lhagent.id()};
  }
  const std::size_t leaves = hagent.iagent_count();
  for (std::size_t s = 0; s < shards; ++s) {
    schemes[s]->lhagent_addresses_ = addresses;
    schemes[s]->sharded_total_iagents_ = leaves;
  }
  return schemes;
}

LocationScheme::ClientState HashLocationScheme::export_client_state(
    platform::AgentId agent) {
  ClientState state;
  if (const std::uint64_t* seq = seqs_.find(agent)) {
    state.seq = *seq;
    seqs_.erase(agent);
  }
  return state;
}

void HashLocationScheme::import_client_state(platform::AgentId agent,
                                             const ClientState& state) {
  if (state.seq != 0) seqs_[agent] = state.seq;
}

LHAgent* HashLocationScheme::local_lhagent(platform::AgentId agent) {
  const auto node = system_.node_of(agent);
  if (!node) return nullptr;  // caller is mid-migration; abort the attempt
  return lhagents_[*node];
}

void HashLocationScheme::register_agent(platform::Agent& self,
                                        std::function<void(bool)> done) {
  ++stats_.registers;
  send_register(self.id(), ++seqs_[self.id()], config_.max_locate_retries,
                std::move(done));
}

void HashLocationScheme::update_location(platform::Agent& self,
                                         std::function<void(bool)> done) {
  ++stats_.updates;
  send_update(self.id());
  // One-way semantics: "sent" is all the mover learns (paper Â§2.3); the
  // error paths come back through handle_agent_message / bounce notices.
  done(true);
}

bool HashLocationScheme::handle_agent_message(
    platform::Agent& self, const platform::Message& message) {
  if (const auto* notify = message.body_as<WatchNotify>()) {
    // The notification carries a fresh authoritative binding — deposit it
    // at the watcher's node before firing the callbacks.
    if (LHAgent* lhagent = local_lhagent(self.id()); lhagent != nullptr) {
      lhagent->cache_store(notify->entry);
    }
    // Fire every pending watch of this (requester, target) pair.
    for (std::size_t i = 0; i < pending_watches_.size();) {
      PendingWatch& pending = *pending_watches_[i];
      if (pending.requester == self.id() &&
          pending.target == notify->entry.agent) {
        auto done = std::move(pending.done);
        pending_watches_.erase(pending_watches_.begin() +
                               static_cast<std::ptrdiff_t>(i));
        WatchOutcome outcome;
        outcome.fired = true;
        outcome.entry = notify->entry;
        done(outcome);
      } else {
        ++i;
      }
    }
    return true;
  }
  if (const auto* notice = message.body_as<NotResponsibleNotice>()) {
    // Paper Â§4.3 trigger (i): our last update reached an IAgent that no
    // longer serves us. Refresh the local copy and resend.
    if (notice->agent == self.id()) {
      ++stats_.stale_retries;
      refresh_and_resend_update(self.id());
    }
    return true;
  }
  return false;
}

void HashLocationScheme::handle_delivery_failure(
    platform::Agent& self, const platform::DeliveryFailure& failure) {
  (void)failure;
  // A one-way update chased an IAgent that migrated or retired; the node in
  // our copy is stale.
  ++stats_.delivery_retries;
  refresh_and_resend_update(self.id());
}

void HashLocationScheme::deregister_agent(platform::Agent& self) {
  ++stats_.deregisters;
  LHAgent* lhagent = local_lhagent(self.id());
  if (lhagent == nullptr) return;
  // The departing agent's binding must not outlive it on this node.
  lhagent->cache_invalidate(self.id());
  const auto target = lhagent->resolve(self.id());
  system_.send(self.id(), target,
               DeregisterRequest{self.id(), ++seqs_[self.id()]},
               DeregisterRequest::kWireBytes);
  seqs_.erase(self.id());
}

void HashLocationScheme::send_update(platform::AgentId self) {
  LHAgent* lhagent = local_lhagent(self);
  const auto node = system_.node_of(self);
  if (lhagent == nullptr || !node) return;  // moved on; next arrival reports
  const LocationEntry entry{self, *node, ++seqs_[self]};
  if (config_.update_batching) {
    // Hand the report to the co-located LHAgent (same-node IPC, free by the
    // DESIGN.md §2 cost model); it coalesces reports from every local mover
    // and flushes one BatchedUpdate per responsible IAgent.
    lhagent->enqueue_update(entry);
    return;
  }
  // Same free deposit the batched path gets inside enqueue_update: the
  // mover reporting from here is the freshest binding this node can know.
  lhagent->cache_store(entry);
  system_.send(self, lhagent->resolve(self), UpdateRequest{entry},
               UpdateRequest::kWireBytes);
}

void HashLocationScheme::refresh_and_resend_update(platform::AgentId self) {
  ++stats_.refreshes_triggered;
  LHAgent* lhagent = local_lhagent(self);
  if (lhagent == nullptr) return;
  lhagent->refresh([this, self] { send_update(self); });
}

void HashLocationScheme::send_register(platform::AgentId self,
                                       std::uint64_t seq, int attempts_left,
                                       std::function<void(bool)> done) {
  LHAgent* lhagent = local_lhagent(self);
  const auto node = system_.node_of(self);
  if (lhagent == nullptr || !node) {
    done(false);
    return;
  }
  if (attempts_left <= 0) {
    AGENTLOC_LOG(kWarn, "hash-scheme")
        << "registration for agent " << self << " gave up";
    done(false);
    return;
  }

  const LocationEntry entry{self, *node, seq};
  const platform::AgentAddress target = lhagent->resolve(self);
  system_.request(
      self, target, RegisterRequest{entry}, RegisterRequest::kWireBytes,
      [this, self, seq, attempts_left,
       done = std::move(done)](platform::RpcResult result) mutable {
        if (result.ok()) {
          if (const auto* ack = result.reply.body_as<UpdateAck>();
              ack != nullptr && ack->responsible) {
            done(true);
            return;
          }
          ++stats_.stale_retries;
        } else if (result.status ==
                   platform::RpcResult::Status::kDeliveryFailure) {
          ++stats_.delivery_retries;
        } else {
          // Timeout: slow, not stale. Retry without refreshing.
          ++stats_.timeout_retries;
          send_register(self, seq, attempts_left - 1, std::move(done));
          return;
        }
        ++stats_.refreshes_triggered;
        LHAgent* lhagent_now = local_lhagent(self);
        if (lhagent_now == nullptr) {
          done(false);
          return;
        }
        lhagent_now->refresh([this, self, seq, attempts_left,
                              done = std::move(done)]() mutable {
          send_register(self, seq, attempts_left - 1, std::move(done));
        });
      },
      config_.rpc_timeout);
}

void HashLocationScheme::watch(platform::Agent& requester,
                               platform::AgentId target,
                               std::function<void(const WatchOutcome&)> done) {
  watch_attempt(requester.id(), target, 1, std::move(done));
}

void HashLocationScheme::watch_attempt(
    platform::AgentId requester, platform::AgentId target, int attempt,
    std::function<void(const WatchOutcome&)> done) {
  LHAgent* lhagent = local_lhagent(requester);
  if (attempt > config_.max_locate_retries || lhagent == nullptr) {
    done(WatchOutcome{});
    return;
  }
  system_.request(
      requester, lhagent->resolve(target), WatchRequest{target},
      WatchRequest::kWireBytes,
      [this, requester, target, attempt,
       done = std::move(done)](platform::RpcResult result) mutable {
        const auto* reply =
            result.ok() ? result.reply.body_as<LocateReply>() : nullptr;
        if (reply != nullptr &&
            (reply->status == LocateStatus::kFound ||
             reply->status == LocateStatus::kUnknown)) {
          // Armed at the responsible IAgent; wait for the WatchNotify.
          arm_watch(requester, target, std::move(done));
          return;
        }
        if (reply != nullptr &&
            reply->status == LocateStatus::kNotResponsible) {
          ++stats_.stale_retries;
        } else if (!result.ok() &&
                   result.status ==
                       platform::RpcResult::Status::kDeliveryFailure) {
          ++stats_.delivery_retries;
        } else if (!result.ok()) {
          ++stats_.timeout_retries;
          watch_attempt(requester, target, attempt + 1, std::move(done));
          return;
        }
        ++stats_.refreshes_triggered;
        LHAgent* lhagent_now = local_lhagent(requester);
        if (lhagent_now == nullptr) {
          done(WatchOutcome{});
          return;
        }
        lhagent_now->refresh([this, requester, target, attempt,
                              done = std::move(done)]() mutable {
          watch_attempt(requester, target, attempt + 1, std::move(done));
        });
      },
      config_.rpc_timeout);
}

void HashLocationScheme::arm_watch(
    platform::AgentId requester, platform::AgentId target,
    std::function<void(const WatchOutcome&)> done) {
  auto pending = std::make_unique<PendingWatch>();
  PendingWatch* raw = pending.get();
  pending->token = ++watch_tokens_;
  pending->requester = requester;
  pending->target = target;
  pending->done = std::move(done);
  pending->timeout = std::make_unique<sim::Timeout>(system_.simulator());
  pending->timeout->arm(config_.watch_timeout, [this, token = raw->token] {
    for (std::size_t i = 0; i < pending_watches_.size(); ++i) {
      if (pending_watches_[i]->token == token) {
        auto expired = std::move(pending_watches_[i]);
        pending_watches_.erase(pending_watches_.begin() +
                               static_cast<std::ptrdiff_t>(i));
        expired->done(WatchOutcome{});
        return;
      }
    }
  });
  pending_watches_.push_back(std::move(pending));
}

void HashLocationScheme::locate(platform::Agent& requester,
                                platform::AgentId target,
                                std::function<void(const LocateOutcome&)> done) {
  ++stats_.locates;
  locate_attempt(requester.id(), target, 1, std::move(done));
}

void HashLocationScheme::locate_attempt(
    platform::AgentId requester, platform::AgentId target, int attempt,
    std::function<void(const LocateOutcome&)> done) {
  if (attempt > config_.max_locate_retries) {
    fail_locate(requester, target, attempt - 1, done);
    return;
  }
  LHAgent* lhagent = local_lhagent(requester);
  if (lhagent == nullptr) {
    ++stats_.locates_failed;
    done(LocateOutcome{false, net::kNoNode, attempt - 1});
    return;
  }

  // Cache fast path (DESIGN.md §12), first attempt only — a retry means
  // something already proved stale, so it goes straight to the authority.
  if (attempt == 1 && lhagent->location_cache() != nullptr) {
    LocationCache& cache = *lhagent->location_cache();
    if (const auto hit = cache.lookup(target, system_.now())) {
      if (hit->negative) {
        // A recent authoritative "unknown": short-circuit the retry cycle.
        ++stats_.locates_failed;
        done(LocateOutcome{false, net::kNoNode, 0});
        return;
      }
      if (config_.location_cache.optimistic_jump) {
        probe_cached_node(requester, target, hit->node, attempt,
                          std::move(done));
        return;
      }
      // Jump disabled: answer from the cache unverified. Bounded-staleness
      // mode — at most `ttl` behind, cheaper than even a probe.
      ++stats_.locates_found;
      done(LocateOutcome{true, hit->node, 0});
      return;
    }
  }
  locate_via_iagent(requester, target, attempt, std::move(done));
}

void HashLocationScheme::probe_cached_node(
    platform::AgentId requester, platform::AgentId target,
    net::NodeId cached_node, int attempt,
    std::function<void(const LocateOutcome&)> done) {
  if (cached_node >= lhagents_.size()) {
    // A binding for a node this deployment does not have (corrupt entry);
    // treat as stale.
    if (LHAgent* lhagent = local_lhagent(requester);
        lhagent != nullptr && lhagent->location_cache() != nullptr) {
      lhagent->location_cache()->note_stale(target);
    }
    locate_via_iagent(requester, target, attempt, std::move(done));
    return;
  }
  const platform::AgentAddress probe_address = lhagent_address(cached_node);
  system_.request(
      requester, probe_address, LocationProbeRequest{target},
      LocationProbeRequest::kWireBytes,
      [this, requester, target, cached_node, attempt,
       done = std::move(done)](platform::RpcResult result) mutable {
        if (result.ok()) {
          if (const auto* reply = result.reply.body_as<LocationProbeReply>();
              reply != nullptr && reply->present) {
            // Verified at the node itself: done, no IAgent involved.
            ++stats_.optimistic_locates;
            ++stats_.locates_found;
            done(LocateOutcome{true, cached_node, attempt});
            return;
          }
        }
        // The target moved away (or the probe was lost): drop the binding
        // and fall back to the authoritative path, same attempt budget.
        if (LHAgent* lhagent = local_lhagent(requester);
            lhagent != nullptr && lhagent->location_cache() != nullptr) {
          lhagent->location_cache()->note_stale(target);
        }
        locate_via_iagent(requester, target, attempt, std::move(done));
      },
      config_.rpc_timeout);
}

void HashLocationScheme::locate_via_iagent(
    platform::AgentId requester, platform::AgentId target, int attempt,
    std::function<void(const LocateOutcome&)> done) {
  LHAgent* lhagent = local_lhagent(requester);
  if (lhagent == nullptr) {
    ++stats_.locates_failed;
    done(LocateOutcome{false, net::kNoNode, attempt - 1});
    return;
  }
  const platform::AgentAddress address = lhagent->resolve(target);

  if (!config_.locate_singleflight) {
    ++stats_.locate_rpcs;
    system_.request(
        requester, address, LocateRequest{target}, LocateRequest::kWireBytes,
        [this, requester, target, attempt,
         done = std::move(done)](platform::RpcResult result) mutable {
          handle_locate_reply(requester, target, attempt, std::move(done),
                              result);
        },
        config_.rpc_timeout);
    return;
  }

  // Singleflight: same-node locates for the same target while one is in
  // flight share that RPC's reply instead of queueing their own at the
  // (possibly hot) IAgent. Each waiter keeps its own attempt counter and
  // continuation; only the wire request is shared.
  const FlightKey key{lhagent->node(), target};
  auto [it, inserted] = locate_flights_.try_emplace(key);
  it->second.push_back([this, requester, target, attempt, done = std::move(
                            done)](const platform::RpcResult& result) mutable {
    handle_locate_reply(requester, target, attempt, std::move(done), result);
  });
  if (!inserted) {
    ++stats_.locates_coalesced;
    return;
  }
  ++stats_.locate_rpcs;
  system_.request(
      requester, address, LocateRequest{target}, LocateRequest::kWireBytes,
      [this, key](platform::RpcResult result) {
        // Detach the flight before running waiters: a waiter may retry and
        // open a fresh flight for the same key.
        auto flight = locate_flights_.extract(key);
        if (flight.empty()) return;
        for (auto& waiter : flight.mapped()) waiter(result);
      },
      config_.rpc_timeout);
}

void HashLocationScheme::handle_locate_reply(
    platform::AgentId requester, platform::AgentId target, int attempt,
    std::function<void(const LocateOutcome&)> done,
    const platform::RpcResult& result) {
  auto refresh_and_retry = [&]() mutable {
    ++stats_.refreshes_triggered;
    LHAgent* lhagent_now = local_lhagent(requester);
    if (lhagent_now == nullptr) {
      ++stats_.locates_failed;
      done(LocateOutcome{false, net::kNoNode, attempt});
      return;
    }
    lhagent_now->refresh([this, requester, target, attempt,
                          done = std::move(done)]() mutable {
      locate_attempt(requester, target, attempt + 1, std::move(done));
    });
  };

  if (!result.ok()) {
    if (result.status == platform::RpcResult::Status::kDeliveryFailure) {
      // The IAgent is not at the node our copy recorded: stale copy.
      ++stats_.delivery_retries;
      refresh_and_retry();
    } else {
      // Timeout: slow or lossy, not stale — retry without refreshing.
      ++stats_.timeout_retries;
      locate_attempt(requester, target, attempt + 1, std::move(done));
    }
    return;
  }
  const auto* reply = result.reply.body_as<LocateReply>();
  if (reply == nullptr) {
    ++stats_.locates_failed;
    done(LocateOutcome{false, net::kNoNode, attempt});
    return;
  }
  switch (reply->status) {
    case LocateStatus::kFound:
      // Remember the authoritative answer for the requester's node; the
      // carried seq keeps out-of-order deposits newest-wins.
      if (LHAgent* lhagent = local_lhagent(requester); lhagent != nullptr) {
        lhagent->cache_store(LocationEntry{target, reply->node, reply->seq});
      }
      ++stats_.locates_found;
      done(LocateOutcome{true, reply->node, attempt});
      return;
    case LocateStatus::kNotResponsible:
      // Paper §4.3 trigger (ii).
      ++stats_.stale_retries;
      refresh_and_retry();
      return;
    case LocateStatus::kTransient:
      // Handoff in flight: the mapping is current, just early. Retry
      // without refreshing.
      ++stats_.transient_retries;
      system_.simulator().schedule_after(
          config_.transient_retry_delay,
          [this, requester, target, attempt, done = std::move(done)]() mutable {
            locate_attempt(requester, target, attempt + 1, std::move(done));
          });
      return;
    case LocateStatus::kUnknown:
      // Either the target never existed or our copy routed us to an
      // IAgent that never received the handoff; one refresh cycle
      // settles which.
      refresh_and_retry();
      return;
  }
}

void HashLocationScheme::fail_locate(
    platform::AgentId requester, platform::AgentId target, int attempts,
    const std::function<void(const LocateOutcome&)>& done) {
  ++stats_.locates_failed;
  // Every retry (including a refresh cycle) ended in kUnknown: remember the
  // absence so the next queries for this target skip the whole cycle.
  if (LHAgent* lhagent = local_lhagent(requester);
      lhagent != nullptr && lhagent->location_cache() != nullptr &&
      config_.location_cache.negative_entries) {
    lhagent->location_cache()->store_negative(target, system_.now());
  }
  done(LocateOutcome{false, net::kNoNode, attempts});
}

const SchemeStats& HashLocationScheme::stats() const noexcept {
  SchemeStats& stats = const_cast<HashLocationScheme*>(this)->stats_;
  stats.cache_hits = 0;
  stats.cache_misses = 0;
  stats.cache_stale_hits = 0;
  stats.cache_evictions = 0;
  stats.cache_invalidations = 0;
  for (const LHAgent* lhagent : lhagents_) {
    if (lhagent == nullptr) continue;  // sharded: remote nodes
    const LocationCache* cache = lhagent->location_cache();
    if (cache == nullptr) continue;
    const LocationCacheStats& counters = cache->stats();
    stats.cache_hits += counters.hits + counters.negative_hits;
    stats.cache_misses += counters.misses;
    stats.cache_stale_hits += counters.stale_hits;
    stats.cache_evictions += counters.evictions;
    stats.cache_invalidations += counters.invalidations;
  }
  return stats_;
}

std::size_t HashLocationScheme::estimated_resident_bytes() const noexcept {
  if (sharded_) {
    // Each shard counts what it hosts; the experiment sums across shards.
    std::size_t bytes =
        seqs_.capacity() * (sizeof(platform::AgentId) + sizeof(std::uint64_t));
    if (hagent_ != nullptr) bytes += hagent_->resident_bytes();
    if (backup_ != nullptr && backup_ != hagent_) {
      bytes += backup_->resident_bytes();
    }
    for (const LHAgent* lhagent : lhagents_) {
      if (lhagent != nullptr) bytes += lhagent->resident_bytes();
    }
    for (const platform::AgentId id : known_iagents_) {
      const auto* iagent = dynamic_cast<const IAgent*>(system_.find(id));
      if (iagent != nullptr) bytes += iagent->resident_bytes();
    }
    return bytes;
  }

  // Mirror hagent()'s primary selection, const-safely: `hagent_` dangles
  // once the primary is disposed (failover tests), so only touch it while
  // the platform still knows the id.
  const HAgent* primary = nullptr;
  if (system_.exists(hagent_id_)) {
    primary = hagent_;
  } else if (backup_ != nullptr) {
    primary = backup_;
  }

  std::size_t bytes =
      seqs_.capacity() * (sizeof(platform::AgentId) + sizeof(std::uint64_t));
  if (primary != nullptr) bytes += primary->resident_bytes();
  if (backup_ != nullptr && backup_ != primary) {
    bytes += backup_->resident_bytes();
  }
  for (const LHAgent* lhagent : lhagents_) {
    bytes += lhagent->resident_bytes();
  }

  // The tree's leaves ARE the IAgents (hashtree::IAgentId == platform
  // AgentId), so the live tracker population is enumerable through the
  // primary copy. A leaf mid-retirement may already be disposed — skip it.
  if (primary != nullptr && primary->iagent_count() > 0) {
    primary->tree().for_each_leaf(
        [&](hashtree::IAgentId leaf, hashtree::NodeLocation) {
          const auto* iagent = dynamic_cast<const IAgent*>(system_.find(leaf));
          if (iagent != nullptr) bytes += iagent->resident_bytes();
        });
  }
  return bytes;
}

void HashLocationScheme::reserve(std::size_t agents) {
  if (sharded_) {
    // `agents` is the global population; this shard's seq table only ever
    // holds the clients resident here (≈ 1/shards of it), and each local
    // IAgent a hash-uniform share of the whole.
    const std::size_t shards =
        lhagent_addresses_.empty() ? 1 : lhagent_addresses_.size();
    seqs_.reserve(agents / shards + 1);
    const std::size_t share =
        agents / (sharded_total_iagents_ ? sharded_total_iagents_ : 1) + 1;
    for (const platform::AgentId id : known_iagents_) {
      auto* iagent = dynamic_cast<IAgent*>(system_.find(id));
      if (iagent != nullptr) iagent->reserve(share);
    }
    return;
  }
  seqs_.reserve(agents);
  const HAgent* primary = system_.exists(hagent_id_) ? hagent_ : backup_;
  if (primary == nullptr || primary->iagent_count() == 0) return;
  // Responsibility is hash-partitioned across the current leaves; size each
  // for a uniform share (later splits re-home entries with their own
  // handoff-time reserve).
  const std::size_t share = agents / primary->iagent_count() + 1;
  primary->tree().for_each_leaf(
      [&](hashtree::IAgentId leaf, hashtree::NodeLocation) {
        auto* iagent = dynamic_cast<IAgent*>(system_.find(leaf));
        if (iagent != nullptr) iagent->reserve(share);
      });
}

}  // namespace agentloc::core
