#include "core/forwarding_scheme.hpp"

#include <utility>

namespace agentloc::core {

void ForwarderAgent::on_message(const platform::Message& message) {
  if (const auto* forward = message.body_as<SetForward>()) {
    Slot& slot = state_[forward->agent];
    if (forward->seq >= slot.seq) {
      slot.here = false;
      slot.next = forward->next;
      slot.seq = forward->seq;
    }
  } else if (const auto* presence = message.body_as<PresenceNotice>()) {
    Slot& slot = state_[presence->agent];
    if (presence->seq >= slot.seq) {
      slot.here = presence->here;
      if (presence->here) slot.next = net::kNoNode;
      slot.seq = presence->seq;
    }
  } else if (const auto* chase = message.body_as<ChaseRequest>()) {
    ChaseReply reply;
    const Slot* slot = state_.find(chase->target);
    if (slot == nullptr) {
      reply.kind = ChaseReply::Kind::kUnknown;
    } else if (slot->here) {
      reply.kind = ChaseReply::Kind::kHere;
      reply.next = node();
    } else if (slot->next != net::kNoNode) {
      reply.kind = ChaseReply::Kind::kForward;
      reply.next = slot->next;
    } else {
      reply.kind = ChaseReply::Kind::kUnknown;
    }
    system().reply(message, id(), reply, ChaseReply::kWireBytes);
  }
}

ForwardingLocationScheme::ForwardingLocationScheme(
    platform::AgentSystem& system, MechanismConfig config,
    net::NodeId name_service_node)
    : system_(system), config_(config) {
  name_service_ = &system_.create<CentralTracker>(name_service_node);
  name_service_address_ =
      platform::AgentAddress{name_service_node, name_service_->id()};
  forwarders_.reserve(system_.node_count());
  for (net::NodeId node = 0; node < system_.node_count(); ++node) {
    forwarders_.push_back(&system_.create<ForwarderAgent>(node));
  }
}

ForwardingLocationScheme::ForwardingLocationScheme(
    ShardedTag, platform::AgentSystem& system, MechanismConfig config)
    : system_(system), config_(config) {}

std::vector<std::unique_ptr<ForwardingLocationScheme>>
ForwardingLocationScheme::build_sharded(
    const std::vector<platform::AgentSystem*>& systems,
    const MechanismConfig& config, net::NodeId name_service_node) {
  const std::size_t shards = systems.size();
  std::vector<std::unique_ptr<ForwardingLocationScheme>> schemes;
  schemes.reserve(shards);
  std::vector<platform::AgentAddress> addresses(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    const net::NodeId node = static_cast<net::NodeId>(s);
    schemes.emplace_back(
        new ForwardingLocationScheme(ShardedTag{}, *systems[s], config));
    ForwarderAgent& forwarder = systems[s]->create<ForwarderAgent>(node);
    schemes.back()->forwarders_.push_back(&forwarder);
    addresses[s] = platform::AgentAddress{node, forwarder.id()};
  }
  CentralTracker& name_service =
      systems[name_service_node]->create<CentralTracker>(name_service_node);
  schemes[name_service_node]->name_service_ = &name_service;
  const platform::AgentAddress name_service_address{name_service_node,
                                                    name_service.id()};
  for (std::size_t s = 0; s < shards; ++s) {
    schemes[s]->forwarder_addresses_ = addresses;
    schemes[s]->name_service_address_ = name_service_address;
  }
  return schemes;
}

LocationScheme::ClientState ForwardingLocationScheme::export_client_state(
    platform::AgentId agent) {
  ClientState state;
  if (const std::uint64_t* seq = seqs_.find(agent)) {
    state.seq = *seq;
    seqs_.erase(agent);
  }
  if (const net::NodeId* last = last_node_.find(agent)) {
    state.last_node = *last;
    last_node_.erase(agent);
  }
  return state;
}

void ForwardingLocationScheme::import_client_state(platform::AgentId agent,
                                                   const ClientState& state) {
  if (state.seq != 0) seqs_[agent] = state.seq;
  if (state.last_node != net::kNoNode) last_node_[agent] = state.last_node;
}

void ForwardingLocationScheme::register_agent(platform::Agent& self,
                                              std::function<void(bool)> done) {
  ++stats_.registers;
  const auto node = system_.node_of(self.id());
  if (!node) {
    done(false);
    return;
  }
  const std::uint64_t seq = ++seqs_[self.id()];
  last_node_[self.id()] = *node;
  system_.send(self.id(), forwarder_at(*node),
               PresenceNotice{self.id(), true, seq},
               PresenceNotice::kWireBytes);
  system_.request(
      self.id(), name_service_address_,
      RegisterRequest{LocationEntry{self.id(), *node, seq}},
      RegisterRequest::kWireBytes,
      [done = std::move(done)](platform::RpcResult result) {
        done(result.ok());
      },
      config_.rpc_timeout);
}

void ForwardingLocationScheme::update_location(platform::Agent& self,
                                               std::function<void(bool)> done) {
  ++stats_.updates;
  const auto node = system_.node_of(self.id());
  if (!node) {
    done(false);
    return;
  }
  const std::uint64_t seq = ++seqs_[self.id()];
  const net::NodeId* previous = last_node_.find(self.id());
  if (previous != nullptr && *previous != *node) {
    // Leave a pointer behind; no name-service update (Voyager's lazy mode —
    // the name service learns on the next successful chase).
    system_.send(self.id(), forwarder_at(*previous),
                 SetForward{self.id(), *node, seq}, SetForward::kWireBytes);
  }
  last_node_[self.id()] = *node;
  system_.send(self.id(), forwarder_at(*node),
               PresenceNotice{self.id(), true, seq},
               PresenceNotice::kWireBytes);
  done(true);
}

void ForwardingLocationScheme::deregister_agent(platform::Agent& self) {
  ++stats_.deregisters;
  const auto node = system_.node_of(self.id());
  if (!node) return;
  const std::uint64_t seq = ++seqs_[self.id()];
  system_.send(self.id(), forwarder_at(*node),
               PresenceNotice{self.id(), false, seq},
               PresenceNotice::kWireBytes);
  system_.send(self.id(), name_service_address_,
               DeregisterRequest{self.id(), seq},
               DeregisterRequest::kWireBytes);
  seqs_.erase(self.id());
  last_node_.erase(self.id());
}

void ForwardingLocationScheme::locate(
    platform::Agent& requester, platform::AgentId target,
    std::function<void(const LocateOutcome&)> done) {
  ++stats_.locates;
  // Phase 1: ask the name service for the last node it heard of.
  system_.request(
      requester.id(), name_service_address_, LocateRequest{target},
      LocateRequest::kWireBytes,
      [this, requester_id = requester.id(), target,
       done = std::move(done)](platform::RpcResult result) mutable {
        if (!result.ok()) {
          ++stats_.timeout_retries;
          ++stats_.locates_failed;
          done(LocateOutcome{false, net::kNoNode, 1});
          return;
        }
        const auto* reply = result.reply.body_as<LocateReply>();
        if (reply == nullptr || reply->status != LocateStatus::kFound) {
          ++stats_.locates_failed;
          done(LocateOutcome{false, net::kNoNode, 1});
          return;
        }
        chase(requester_id, target, reply->node, 0, 2, std::move(done));
      },
      config_.rpc_timeout);
}

void ForwardingLocationScheme::chase(
    platform::AgentId requester, platform::AgentId target, net::NodeId at,
    int hops, int attempt, std::function<void(const LocateOutcome&)> done) {
  if (hops > kMaxHops || !system_.node_of(requester)) {
    ++stats_.locates_failed;
    done(LocateOutcome{false, net::kNoNode, attempt});
    return;
  }
  system_.request(
      requester, forwarder_at(at), ChaseRequest{target},
      ChaseRequest::kWireBytes,
      [this, requester, target, at, hops, attempt,
       done = std::move(done)](platform::RpcResult result) mutable {
        if (!result.ok()) {
          ++stats_.timeout_retries;
          ++stats_.locates_failed;
          done(LocateOutcome{false, net::kNoNode, attempt});
          return;
        }
        const auto* reply = result.reply.body_as<ChaseReply>();
        if (reply == nullptr || reply->kind == ChaseReply::Kind::kUnknown) {
          ++stats_.locates_failed;
          done(LocateOutcome{false, net::kNoNode, attempt});
          return;
        }
        if (reply->kind == ChaseReply::Kind::kHere) {
          ++stats_.locates_found;
          chase_hops_ += static_cast<std::uint64_t>(hops);
          // Lazy name-service refresh (path compression for future chases).
          system_.send(requester, name_service_address_,
                       UpdateRequest{LocationEntry{
                           target, reply->next, ++seqs_[target]}},
                       UpdateRequest::kWireBytes);
          done(LocateOutcome{true, reply->next, attempt});
          return;
        }
        chase(requester, target, reply->next, hops + 1, attempt + 1,
              std::move(done));
      },
      config_.rpc_timeout);
}

}  // namespace agentloc::core
