#pragma once

#include <memory>
#include <vector>

#include "core/centralized_scheme.hpp"
#include "core/config.hpp"
#include "core/scheme.hpp"
#include "util/flat_map.hpp"

namespace agentloc::core {

/// Ajanta-style home-registry scheme (paper §6): one registry per node; an
/// agent's *home* registry — derivable from its name, here `id mod #nodes` —
/// always knows its precise current location. Every move updates the home
/// registry; every locate asks the target's home registry.
///
/// Strengths: no central bottleneck (load spreads by agent id), one hop per
/// locate. Weakness the paper calls out: the scheme is welded to a naming
/// convention that encodes the home, and a popular agent's home registry
/// still hot-spots — there is no load-adaptive rebalancing.
///
/// The per-node registry reuses `CentralTracker` (the registry performs the
/// same functions, scoped to the agents homed at its node).
class HomeRegistryLocationScheme : public LocationScheme {
 public:
  HomeRegistryLocationScheme(platform::AgentSystem& system,
                             MechanismConfig config);

  /// Sharded deployment (DESIGN.md §16): one instance per shard (shard index
  /// == node id), each creating only its own node's registry; the full
  /// registry address table is shared so `home_of` resolves remote homes.
  static std::vector<std::unique_ptr<HomeRegistryLocationScheme>>
  build_sharded(const std::vector<platform::AgentSystem*>& systems,
                const MechanismConfig& config);

  std::string name() const override { return "home"; }

  void register_agent(platform::Agent& self,
                      std::function<void(bool)> done) override;
  void update_location(platform::Agent& self,
                       std::function<void(bool)> done) override;
  void deregister_agent(platform::Agent& self) override;
  void locate(platform::Agent& requester, platform::AgentId target,
              std::function<void(const LocateOutcome&)> done) override;

  std::size_t tracker_count() const override { return registries_.size(); }

  std::size_t estimated_resident_bytes() const noexcept override {
    std::size_t bytes = seqs_.capacity() *
                        (sizeof(platform::AgentId) + sizeof(std::uint64_t));
    for (const CentralTracker* registry : registries_) {
      bytes += registry->resident_bytes();
    }
    return bytes;
  }

  void reserve(std::size_t agents) override {
    // Sharded: `agents` is the global population; this shard's seq table
    // only holds the clients resident here.
    seqs_.reserve(registry_addresses_.empty()
                      ? agents
                      : agents / registry_addresses_.size() + 1);
    if (home_count() == 0) return;
    // Homes spread by `id mod #nodes` — size each registry for its share.
    const std::size_t share = agents / home_count() + 1;
    for (CentralTracker* registry : registries_) registry->reserve(share);
  }

  /// The registry responsible for `agent` (by the naming convention).
  platform::AgentAddress home_of(platform::AgentId agent) const;

  /// Per-agent update seq, moved with a client that crosses shards.
  ClientState export_client_state(platform::AgentId agent) override;
  void import_client_state(platform::AgentId agent,
                           const ClientState& state) override;

 private:
  struct ShardedTag {};
  HomeRegistryLocationScheme(ShardedTag, platform::AgentSystem& system,
                             MechanismConfig config);

  void send_register(platform::AgentId self, std::uint64_t seq,
                     int attempts_left, std::function<void(bool)> done);
  void locate_attempt(platform::AgentId requester, platform::AgentId target,
                      int attempt,
                      std::function<void(const LocateOutcome&)> done);

  /// Number of homes agents hash over (`id mod n`): the deployment-wide node
  /// count in both modes.
  std::size_t home_count() const noexcept {
    return registry_addresses_.empty() ? registries_.size()
                                       : registry_addresses_.size();
  }

  platform::AgentSystem& system_;
  MechanismConfig config_;
  std::vector<CentralTracker*> registries_;  ///< sharded: own node's only
  /// Sharded: full registry address table, indexed by node (empty otherwise).
  std::vector<platform::AgentAddress> registry_addresses_;
  /// Per-agent update sequence numbers (flat storage; see HashLocationScheme).
  util::FlatMap<platform::AgentId, std::uint64_t, platform::kNoAgent> seqs_;
};

}  // namespace agentloc::core
