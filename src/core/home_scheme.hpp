#pragma once

#include "core/centralized_scheme.hpp"
#include "core/config.hpp"
#include "core/scheme.hpp"
#include "util/flat_map.hpp"

namespace agentloc::core {

/// Ajanta-style home-registry scheme (paper §6): one registry per node; an
/// agent's *home* registry — derivable from its name, here `id mod #nodes` —
/// always knows its precise current location. Every move updates the home
/// registry; every locate asks the target's home registry.
///
/// Strengths: no central bottleneck (load spreads by agent id), one hop per
/// locate. Weakness the paper calls out: the scheme is welded to a naming
/// convention that encodes the home, and a popular agent's home registry
/// still hot-spots — there is no load-adaptive rebalancing.
///
/// The per-node registry reuses `CentralTracker` (the registry performs the
/// same functions, scoped to the agents homed at its node).
class HomeRegistryLocationScheme : public LocationScheme {
 public:
  HomeRegistryLocationScheme(platform::AgentSystem& system,
                             MechanismConfig config);

  std::string name() const override { return "home"; }

  void register_agent(platform::Agent& self,
                      std::function<void(bool)> done) override;
  void update_location(platform::Agent& self,
                       std::function<void(bool)> done) override;
  void deregister_agent(platform::Agent& self) override;
  void locate(platform::Agent& requester, platform::AgentId target,
              std::function<void(const LocateOutcome&)> done) override;

  std::size_t tracker_count() const override { return registries_.size(); }

  std::size_t estimated_resident_bytes() const noexcept override {
    std::size_t bytes = seqs_.capacity() *
                        (sizeof(platform::AgentId) + sizeof(std::uint64_t));
    for (const CentralTracker* registry : registries_) {
      bytes += registry->resident_bytes();
    }
    return bytes;
  }

  void reserve(std::size_t agents) override {
    seqs_.reserve(agents);
    if (registries_.empty()) return;
    // Homes spread by `id mod #nodes` — size each registry for its share.
    const std::size_t share = agents / registries_.size() + 1;
    for (CentralTracker* registry : registries_) registry->reserve(share);
  }

  /// The registry responsible for `agent` (by the naming convention).
  platform::AgentAddress home_of(platform::AgentId agent) const;

 private:
  void send_register(platform::AgentId self, std::uint64_t seq,
                     int attempts_left, std::function<void(bool)> done);
  void locate_attempt(platform::AgentId requester, platform::AgentId target,
                      int attempt,
                      std::function<void(const LocateOutcome&)> done);

  platform::AgentSystem& system_;
  MechanismConfig config_;
  std::vector<CentralTracker*> registries_;
  /// Per-agent update sequence numbers (flat storage; see HashLocationScheme).
  util::FlatMap<platform::AgentId, std::uint64_t, platform::kNoAgent> seqs_;
};

}  // namespace agentloc::core
