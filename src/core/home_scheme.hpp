#pragma once

#include "core/centralized_scheme.hpp"
#include "core/config.hpp"
#include "core/scheme.hpp"

namespace agentloc::core {

/// Ajanta-style home-registry scheme (paper §6): one registry per node; an
/// agent's *home* registry — derivable from its name, here `id mod #nodes` —
/// always knows its precise current location. Every move updates the home
/// registry; every locate asks the target's home registry.
///
/// Strengths: no central bottleneck (load spreads by agent id), one hop per
/// locate. Weakness the paper calls out: the scheme is welded to a naming
/// convention that encodes the home, and a popular agent's home registry
/// still hot-spots — there is no load-adaptive rebalancing.
///
/// The per-node registry reuses `CentralTracker` (the registry performs the
/// same functions, scoped to the agents homed at its node).
class HomeRegistryLocationScheme : public LocationScheme {
 public:
  HomeRegistryLocationScheme(platform::AgentSystem& system,
                             MechanismConfig config);

  std::string name() const override { return "home"; }

  void register_agent(platform::Agent& self,
                      std::function<void(bool)> done) override;
  void update_location(platform::Agent& self,
                       std::function<void(bool)> done) override;
  void deregister_agent(platform::Agent& self) override;
  void locate(platform::Agent& requester, platform::AgentId target,
              std::function<void(const LocateOutcome&)> done) override;

  std::size_t tracker_count() const override { return registries_.size(); }

  /// The registry responsible for `agent` (by the naming convention).
  platform::AgentAddress home_of(platform::AgentId agent) const;

 private:
  void send_register(platform::AgentId self, std::uint64_t seq,
                     int attempts_left, std::function<void(bool)> done);
  void locate_attempt(platform::AgentId requester, platform::AgentId target,
                      int attempt,
                      std::function<void(const LocateOutcome&)> done);

  platform::AgentSystem& system_;
  MechanismConfig config_;
  std::vector<CentralTracker*> registries_;
  std::unordered_map<platform::AgentId, std::uint64_t> seqs_;
};

}  // namespace agentloc::core
