#pragma once

#include <memory>
#include <vector>

#include "core/config.hpp"
#include "core/scheme.hpp"
#include "core/tracker_table.hpp"
#include "platform/agent.hpp"
#include "util/flat_map.hpp"

namespace agentloc::core {

/// The single tracking agent of the centralized baseline (paper §5): "a
/// single central agent responsible for maintaining the current location of
/// all mobile agents in the system", performing the same functions as an
/// IAgent — but never splitting, so every update and query in the system
/// funnels through its one inbox. That funnel is what the paper's Figures
/// 7–8 measure against.
class CentralTracker : public platform::Agent {
 public:
  std::string kind() const override { return "central-tracker"; }

  void on_message(const platform::Message& message) override;

  std::size_t entry_count() const noexcept { return table_.size(); }
  std::uint64_t requests_served() const noexcept { return requests_; }
  std::size_t resident_bytes() const noexcept {
    return table_.resident_bytes();
  }
  void reserve(std::size_t agents) { table_.reserve(agents); }

 private:
  LocationTable table_;
  std::uint64_t requests_ = 0;
};

/// Centralized location scheme: the paper's scalability baseline.
class CentralizedLocationScheme : public LocationScheme {
 public:
  CentralizedLocationScheme(platform::AgentSystem& system,
                            MechanismConfig config,
                            net::NodeId tracker_node = 0);

  /// Client instance for a sharded deployment (DESIGN.md §16): no tracker of
  /// its own, reports and queries go to the injected address (the tracker
  /// created by the shard owning `tracker_node`).
  CentralizedLocationScheme(platform::AgentSystem& system,
                            MechanismConfig config,
                            platform::AgentAddress tracker);

  /// One scheme instance per shard (shard index == node id); the tracker
  /// lives on `tracker_node`'s shard, every other instance is a client.
  static std::vector<std::unique_ptr<CentralizedLocationScheme>> build_sharded(
      const std::vector<platform::AgentSystem*>& systems,
      const MechanismConfig& config, net::NodeId tracker_node = 0);

  std::string name() const override { return "centralized"; }

  void register_agent(platform::Agent& self,
                      std::function<void(bool)> done) override;
  void update_location(platform::Agent& self,
                       std::function<void(bool)> done) override;
  void deregister_agent(platform::Agent& self) override;
  void locate(platform::Agent& requester, platform::AgentId target,
              std::function<void(const LocateOutcome&)> done) override;

  /// Sharded client instances report 0 so the cross-shard sum stays 1.
  std::size_t tracker_count() const override {
    return tracker_ != nullptr ? 1 : 0;
  }

  /// Per-agent update seq, moved with a client that crosses shards.
  ClientState export_client_state(platform::AgentId agent) override;
  void import_client_state(platform::AgentId agent,
                           const ClientState& state) override;

  std::size_t estimated_resident_bytes() const noexcept override {
    std::size_t bytes = seqs_.capacity() *
                        (sizeof(platform::AgentId) + sizeof(std::uint64_t));
    if (tracker_ != nullptr) bytes += tracker_->resident_bytes();
    return bytes;
  }

  void reserve(std::size_t agents) override {
    seqs_.reserve(agents);
    if (tracker_ != nullptr) tracker_->reserve(agents);
  }

  CentralTracker& tracker() noexcept { return *tracker_; }

 private:
  void send_report(platform::AgentId self, std::uint64_t seq,
                   int attempts_left, std::function<void(bool)> done);
  void locate_attempt(platform::AgentId requester, platform::AgentId target,
                      int attempt,
                      std::function<void(const LocateOutcome&)> done);

  platform::AgentSystem& system_;
  MechanismConfig config_;
  CentralTracker* tracker_ = nullptr;
  platform::AgentAddress tracker_address_;
  /// Per-agent update sequence numbers (flat storage; see HashLocationScheme).
  util::FlatMap<platform::AgentId, std::uint64_t, platform::kNoAgent> seqs_;
};

}  // namespace agentloc::core
