#include "core/hagent.hpp"

#include <cmath>
#include <utility>

#include "core/iagent.hpp"
#include "platform/agent_system.hpp"
#include "util/bytebuffer.hpp"
#include "util/logging.hpp"

namespace agentloc::core {

HAgent::HAgent(const MechanismConfig& config)
    : config_(config),
      journal_(config.journal_capacity, config.journal_max_bytes) {}

std::vector<platform::AgentAddress> HAgent::coordinator_list() const {
  std::vector<platform::AgentAddress> list{
      platform::AgentAddress{node(), id()}};
  if (backup_) list.push_back(*backup_);
  return list;
}

platform::AgentId HAgent::spawn_iagent(net::NodeId node) {
  if (spawner_) return spawner_(node, config_, coordinator_list());
  return system().create<IAgent>(node, config_, coordinator_list()).id();
}

platform::AgentId HAgent::bootstrap(net::NodeId first_node) {
  const platform::AgentId first = spawn_iagent(first_node);
  tree_.emplace(first, first_node);

  // Optional capacity pre-split (DESIGN.md §15): grow the tree to
  // `initial_iagents` leaves (rounded up to a power of two) before any
  // traffic, by splitting every leaf once per round on its first unused
  // bit. Tables are empty, so no handoffs are owed — each leaf just gets
  // its predicate granted below. The ops are not journaled: every
  // secondary copy is seeded from this tree after bootstrap returns.
  while (config_.initial_iagents > tree_->leaf_count()) {
    for (const hashtree::IAgentId victim : tree_->leaves()) {
      const net::NodeId node = place_new_iagent();
      tree_->simple_split(victim, 1, spawn_iagent(node), node);
    }
  }

  // Grant each leaf its responsibility so the IAgents know the current hash
  // version (the match-everything predicate in the single-IAgent case).
  for (const hashtree::IAgentId leaf : tree_->leaves()) {
    ResponsibilityUpdate grant;
    grant.version = tree_->version();
    grant.predicate = predicate_of(*tree_, leaf);
    send_grant(leaf, grant);
  }
  return first;
}

void HAgent::on_message(const platform::Message& message) {
  if (const auto* request = message.body_as<HashPullRequest>()) {
    handle_pull(message, *request);
  } else if (const auto* request = message.body_as<SplitRequest>()) {
    handle_split(message, *request);
  } else if (const auto* request = message.body_as<MergeRequest>()) {
    handle_merge(message, *request);
  } else if (const auto* done = message.body_as<RehashDone>()) {
    handle_done(*done);
  } else if (const auto* moved = message.body_as<IAgentMoved>()) {
    handle_moved(*moved);
  } else if (const auto* replicate = message.body_as<ReplicateOp>()) {
    handle_replicate(*replicate);
  } else if (message.body_as<PromoteRequest>() != nullptr) {
    promote();
  }
}

void HAgent::bootstrap_follower(platform::AgentAddress primary,
                                const hashtree::HashTree& snapshot) {
  role_ = Role::kFollower;
  primary_ = primary;
  tree_ = snapshot;
}

void HAgent::set_backup(platform::AgentAddress backup) { backup_ = backup; }

void HAgent::replicate(const hashtree::TreeOp& op) {
  if (!backup_) return;
  ++stats_.ops_replicated;
  util::ByteWriter writer;
  hashtree::serialize_op(writer, op);
  ReplicateOp message;
  message.version = tree_->version();
  message.op_bytes = std::move(writer).take();
  const std::size_t bytes = message.wire_bytes();
  system().send(id(), *backup_, std::move(message), bytes);
}

void HAgent::record_op(const hashtree::TreeOp& op) {
  journal_.record(tree_->version(), op);
  stats_.journal_bytes = journal_.bytes();
  stats_.journal_compactions = journal_.truncations();
  replicate(op);
}

void HAgent::handle_replicate(const ReplicateOp& replicate) {
  if (role_ != Role::kFollower || !tree_) return;
  if (replicate.version <= tree_->version()) return;  // duplicate
  if (replicate.version != tree_->version() + 1) {
    // Lost an op (the stream is one-way): resynchronize wholesale.
    resync_from_primary();
    return;
  }
  try {
    util::ByteReader reader(replicate.op_bytes);
    hashtree::apply_op(*tree_, hashtree::deserialize_op(reader));
    ++stats_.ops_applied_as_follower;
  } catch (const std::exception& error) {
    AGENTLOC_LOG(kError, "hagent")
        << "replicated op failed (" << error.what() << "); resyncing";
    resync_from_primary();
  }
}

void HAgent::resync_from_primary() {
  if (!primary_ || resync_in_flight_) return;
  resync_in_flight_ = true;
  ++stats_.resyncs;
  system().request(
      id(), *primary_, HashPullRequest{0, /*force_full=*/true},
      HashPullRequest::kWireBytes, [this](platform::RpcResult result) {
        resync_in_flight_ = false;
        if (!result.ok()) return;  // primary gone; promotion will follow
        const auto* reply = result.reply.body_as<HashPullReply>();
        if (reply == nullptr || reply->is_delta) return;
        try {
          util::ByteReader reader(reply->payload);
          hashtree::HashTree fresh = hashtree::HashTree::deserialize(reader);
          if (!tree_ || fresh.version() >= tree_->version()) {
            tree_ = std::move(fresh);
          }
        } catch (const std::exception& error) {
          AGENTLOC_LOG(kError, "hagent")
              << "resync snapshot rejected: " << error.what();
        }
      });
}

void HAgent::promote() {
  if (role_ != Role::kFollower) return;  // idempotent
  role_ = Role::kPrimary;
  primary_.reset();
  ++stats_.promotions;
  AGENTLOC_LOG(kWarn, "hagent")
      << "promoted to primary at version "
      << (tree_ ? tree_->version() : 0);
}

void HAgent::handle_pull(const platform::Message& message,
                         const HashPullRequest& request) {
  ++stats_.pulls_served;
  HashPullReply reply;

  // Prefer a delta when the journal still covers the requester's version —
  // an O(changes) payload instead of an O(tree) one. Both widths are known
  // analytically, so the loser is never serialized at all.
  if (config_.delta_refresh && !request.force_full) {
    if (const auto delta = journal_.since(request.have_version)) {
      if (delta->serialized_bytes() < tree_->serialized_bytes()) {
        ++stats_.delta_pulls_served;
        reply.is_delta = true;
        util::ByteWriter writer;
        delta->serialize(writer);
        reply.payload = std::move(writer).take();
        const std::size_t bytes = reply.wire_bytes();
        system().reply(message, id(), std::move(reply), bytes);
        return;
      }
    }
  }

  util::ByteWriter writer;
  tree_->serialize(writer);
  reply.payload = std::move(writer).take();
  const std::size_t bytes = reply.wire_bytes();
  system().reply(message, id(), std::move(reply), bytes);
}

HAgent::SplitPlan HAgent::plan_split(const hashtree::HashTree& tree,
                                     hashtree::IAgentId victim,
                                     const std::vector<AgentLoad>& loads,
                                     const MechanismConfig& config) {
  std::uint64_t total = 0;
  for (const AgentLoad& load : loads) total += load.requests;

  const auto moved_fraction = [&](std::size_t position, bool moved_bit) {
    if (total == 0) return 0.0;
    std::uint64_t moved = 0;
    for (const AgentLoad& load : loads) {
      if (id_bit(load.agent, position) == moved_bit) moved += load.requests;
    }
    return static_cast<double>(moved) / static_cast<double>(total);
  };
  const auto is_even = [&](double fraction) {
    return fraction >= config.even_tolerance &&
           fraction <= 1.0 - config.even_tolerance;
  };

  SplitPlan plan;

  // Paper §4.1: complex split first — reclaim a padding bit, left-most label
  // first — falling back to simple split when no reclaim divides the load
  // evenly.
  for (const auto& point : tree.complex_split_candidates(victim)) {
    const std::size_t position = tree.split_point_bit_position(victim, point);
    const bool recorded = tree.label_bit(victim, point);
    const double fraction = moved_fraction(position, !recorded);
    if (is_even(fraction)) {
      plan.complex_point = point;
      plan.moved_fraction = fraction;
      return plan;
    }
  }

  // No load information: make the minimal structural change (m = 1).
  if (total == 0) return plan;

  const std::size_t depth = tree.depth_bits(victim);
  double best_distance = 2.0;
  for (std::size_t m = 1; m <= config.max_split_bits; ++m) {
    const double fraction = moved_fraction(depth + m - 1, true);
    const double distance = std::abs(fraction - 0.5);
    // `<=`: on ties prefer the larger m — when several bits are equally
    // useless (e.g. a shared id prefix), skipping more of them at once gets
    // the tree to the discriminating bits in far fewer splits.
    if (distance <= best_distance) {
      best_distance = distance;
      plan.simple_m = m;
      plan.moved_fraction = fraction;
    }
    if (is_even(fraction)) break;  // first even m wins (paper §4.1)
  }
  return plan;
}

void HAgent::handle_split(const platform::Message& message,
                          const SplitRequest& request) {
  const hashtree::IAgentId victim = message.from;
  if (role_ != Role::kPrimary || !tree_ || busy_ ||
      !tree_->contains(victim)) {
    ++stats_.rehashes_rejected;
    return;
  }

  const SplitPlan plan =
      plan_split(*tree_, victim, request.loads, config_);

  // Create the new IAgent (on whichever shard owns its node), apply the
  // split to the primary copy, then ship new responsibilities to every leaf
  // whose predicate changed. The spawner returns the minted id immediately;
  // a cross-shard install envelope lands before any grant below.
  const net::NodeId new_node = place_new_iagent();
  const platform::AgentId fresh_id = spawn_iagent(new_node);

  const auto before = predicate_snapshot();
  hashtree::TreeOp op;
  op.victim = victim;
  op.new_iagent = fresh_id;
  op.location = new_node;
  if (plan.complex_point) {
    ++stats_.complex_splits;
    op.kind = hashtree::TreeOp::Kind::kComplexSplit;
    op.point = *plan.complex_point;
    tree_->complex_split(victim, *plan.complex_point, fresh_id, new_node);
  } else {
    ++stats_.simple_splits;
    op.kind = hashtree::TreeOp::Kind::kSimpleSplit;
    op.m = static_cast<std::uint32_t>(plan.simple_m);
    tree_->simple_split(victim, plan.simple_m, fresh_id, new_node);
  }
  record_op(op);

  const Predicate fresh_predicate = predicate_of(*tree_, fresh_id);
  std::vector<hashtree::IAgentId> affected;
  for (const auto& [leaf, predicate] : predicate_snapshot()) {
    if (leaf == fresh_id) continue;
    const auto old = before.find(leaf);
    if (old == before.end() || !(old->second.valid_bits ==
                                 predicate.valid_bits)) {
      affected.push_back(leaf);
    }
  }

  ResponsibilityUpdate fresh_grant;
  fresh_grant.version = tree_->version();
  fresh_grant.predicate = fresh_predicate;
  fresh_grant.expected_handoffs = static_cast<std::uint32_t>(affected.size());
  send_grant(fresh_id, fresh_grant);

  for (const hashtree::IAgentId leaf : affected) {
    ResponsibilityUpdate grant;
    grant.version = tree_->version();
    grant.predicate = predicate_of(*tree_, leaf);
    grant.has_transfer = true;
    grant.transfer_to = platform::AgentAddress{new_node, fresh_id};
    grant.transfer_predicate = fresh_predicate;
    send_grant(leaf, grant);
  }

  AGENTLOC_LOG(kInfo, "hagent")
      << (plan.complex_point ? "complex" : "simple") << " split of IAgent "
      << victim << " (rate " << request.rate << "/s) -> new IAgent "
      << fresh_id << " at node " << new_node << ", version "
      << tree_->version();

  begin_rehash(affected.size() + 1);
}

void HAgent::handle_merge(const platform::Message& message,
                          const MergeRequest& request) {
  const hashtree::IAgentId victim = message.from;
  if (role_ != Role::kPrimary || !tree_ || busy_ ||
      !tree_->contains(victim) || tree_->leaf_count() < 2) {
    ++stats_.rehashes_rejected;
    return;
  }

  const net::NodeId victim_node = tree_->location_of(victim);
  const auto before = predicate_snapshot();
  const hashtree::MergeResult result = tree_->merge(victim);
  hashtree::TreeOp op;
  op.kind = hashtree::TreeOp::Kind::kMerge;
  op.victim = victim;
  record_op(op);
  if (result.kind == hashtree::MergeResult::Kind::kSimple) {
    ++stats_.simple_merges;
  } else {
    ++stats_.complex_merges;
  }

  std::vector<hashtree::IAgentId> affected;
  for (const auto& [leaf, predicate] : predicate_snapshot()) {
    const auto old = before.find(leaf);
    if (old == before.end() ||
        !(old->second.valid_bits == predicate.valid_bits)) {
      affected.push_back(leaf);
    }
  }

  RetireOrder order;
  order.version = tree_->version();
  for (const hashtree::IAgentId leaf : affected) {
    order.routes.push_back(RetireOrder::Route{
        predicate_of(*tree_, leaf),
        platform::AgentAddress{tree_->location_of(leaf), leaf}});
  }
  const std::size_t order_bytes = order.wire_bytes();
  system().send(id(), platform::AgentAddress{victim_node, victim},
                std::move(order), order_bytes);

  for (const hashtree::IAgentId leaf : affected) {
    ResponsibilityUpdate grant;
    grant.version = tree_->version();
    grant.predicate = predicate_of(*tree_, leaf);
    grant.expected_handoffs = 1;
    send_grant(leaf, grant);
  }

  AGENTLOC_LOG(kInfo, "hagent")
      << (result.kind == hashtree::MergeResult::Kind::kSimple ? "simple"
                                                              : "complex")
      << " merge of IAgent " << victim << " (rate " << request.rate
      << "/s, " << request.entry_count << " entries), version "
      << tree_->version();

  begin_rehash(affected.size() + 1);
}

void HAgent::handle_done(const RehashDone& done) {
  (void)done;
  if (!busy_) return;
  if (--done_outstanding_ == 0) {
    busy_ = false;
    rehash_timeout_->cancel();
  }
}

void HAgent::handle_moved(const IAgentMoved& moved) {
  if (role_ != Role::kPrimary || !tree_ || !tree_->contains(moved.iagent)) {
    return;
  }
  ++stats_.iagent_moves;
  tree_->set_location(moved.iagent, moved.node);
  hashtree::TreeOp op;
  op.kind = hashtree::TreeOp::Kind::kSetLocation;
  op.victim = moved.iagent;
  op.location = moved.node;
  record_op(op);
}

net::NodeId HAgent::place_new_iagent() {
  // Round-robin placement; the paper defers locality-aware placement to
  // future work (§7), which the IAgent-side migration option covers.
  next_placement_ =
      (next_placement_ + 1) % static_cast<net::NodeId>(system().node_count());
  return next_placement_;
}

void HAgent::begin_rehash(std::size_t done_expected) {
  busy_ = true;
  done_outstanding_ = done_expected;
  if (!rehash_timeout_) {
    rehash_timeout_ = std::make_unique<sim::Timeout>(system().simulator());
  }
  rehash_timeout_->arm(config_.rehash_timeout, [this] {
    // An IAgent died or messages were lost beyond retry; release the lock so
    // the system keeps adapting (entries self-heal via updates).
    ++stats_.rehash_timeouts;
    busy_ = false;
    AGENTLOC_LOG(kWarn, "hagent") << "rehash timed out; unlocking";
  });
}

void HAgent::send_grant(hashtree::IAgentId leaf,
                        const ResponsibilityUpdate& grant) {
  const std::size_t bytes = grant.wire_bytes();
  system().send(id(), platform::AgentAddress{tree_->location_of(leaf), leaf},
                grant, bytes);
}

std::unordered_map<hashtree::IAgentId, Predicate>
HAgent::predicate_snapshot() const {
  std::unordered_map<hashtree::IAgentId, Predicate> snapshot;
  for (const hashtree::IAgentId leaf : tree_->leaves()) {
    snapshot.emplace(leaf, predicate_of(*tree_, leaf));
  }
  return snapshot;
}

}  // namespace agentloc::core
