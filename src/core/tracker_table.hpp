#pragma once

#include <optional>
#include <vector>

#include "core/protocol.hpp"
#include "sim/time.hpp"
#include "util/flat_map.hpp"

namespace agentloc::core {

/// The location table held by a tracking agent (an IAgent, or the single
/// tracker of the centralized baseline): agent id → (node, seq).
///
/// All mutations are sequence-checked so reordered or duplicated updates
/// cannot roll a location back (see `LocationEntry::seq`).
///
/// Backed by `util::FlatMap`: the table is probed on every update, locate and
/// handoff scan, and the node-per-entry layout of `std::unordered_map` made
/// those probes (and bulk extract/clear during rehashes) allocator-bound.
/// `kNoAgent` (0) is the vacant-slot marker; the platform never allocates it.
class LocationTable {
 public:
  /// Insert or update; returns false when `entry.seq` is not newer than the
  /// stored sequence (stale update — ignored).
  bool apply(const LocationEntry& entry);

  /// Remove if the stored sequence is not newer; returns whether removed.
  bool remove(platform::AgentId agent, std::uint64_t seq);

  std::optional<LocationEntry> find(platform::AgentId agent) const;
  bool contains(platform::AgentId agent) const {
    return entries_.contains(agent);
  }
  std::size_t size() const noexcept { return entries_.size(); }

  /// Pre-size for an expected population — bulk loads (handoffs, takeovers)
  /// would otherwise rehash repeatedly while inserting.
  void reserve(std::size_t count) { entries_.reserve(count); }

  /// Allocated bytes of the backing slot array (key + value per slot, the
  /// unit FlatMap allocates). Feeds the scheme-side memory attribution.
  std::size_t resident_bytes() const noexcept {
    return entries_.capacity() *
           (sizeof(platform::AgentId) + sizeof(Stored));
  }

  /// Remove and return every entry matching `predicate` — the handoff scan
  /// performed when responsibility shrinks.
  std::vector<LocationEntry> extract_matching(const Predicate& predicate);

  /// Remove and return everything (retirement).
  std::vector<LocationEntry> extract_all();

  /// Retirement handoff: empty the table, partitioned across `predicates`
  /// (first match wins; entries matching none are dropped). One pass over
  /// the table — no intermediate extract-everything vector.
  std::vector<std::vector<LocationEntry>> drain_partition(
      const std::vector<Predicate>& predicates);

  std::vector<LocationEntry> snapshot() const;

  /// Visit every entry without materializing a snapshot.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    entries_.for_each([&](platform::AgentId agent, const Stored& stored) {
      fn(LocationEntry{agent, stored.node, stored.seq});
    });
  }

 private:
  struct Stored {
    net::NodeId node = net::kNoNode;
    std::uint64_t seq = 0;
  };
  util::FlatMap<platform::AgentId, Stored, platform::kNoAgent> entries_;
};

/// Windowed request-rate statistics (paper §4: "we maintain running
/// statistics of the requests received by each IAgent" and, per agent, "the
/// accumulated rate of update and query requests").
///
/// `record` counts a request in the open window; `roll` closes it. Threshold
/// decisions and split planning read the *closed* window, so they always see
/// a full interval.
class LoadWindow {
 public:
  explicit LoadWindow(sim::SimTime window) : window_(window) {}

  sim::SimTime window() const noexcept { return window_; }

  void record(platform::AgentId agent);

  /// Close the current window.
  void roll();

  /// Requests/second over the last closed window.
  double rate() const noexcept;

  /// Total requests in the last closed window.
  std::uint64_t total() const noexcept { return closed_total_; }

  /// Per-agent request counts of the last closed window, unordered.
  std::vector<AgentLoad> loads() const;

  /// Number of windows closed so far.
  std::uint64_t rolls() const noexcept { return rolls_; }

  /// Allocated bytes of both count tables.
  std::size_t resident_bytes() const noexcept {
    return (open_counts_.capacity() + closed_counts_.capacity()) *
           (sizeof(platform::AgentId) + sizeof(std::uint32_t));
  }

 private:
  using Counts = util::FlatMap<platform::AgentId, std::uint32_t,
                               platform::kNoAgent>;

  sim::SimTime window_;
  Counts open_counts_;
  std::uint64_t open_total_ = 0;
  Counts closed_counts_;
  std::uint64_t closed_total_ = 0;
  std::uint64_t rolls_ = 0;
};

}  // namespace agentloc::core
