#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/summary.hpp"

namespace agentloc::util {

/// Machine-readable bench output: the perf trajectory every bench binary
/// commits as `BENCH_<name>.json` so wins (and regressions) across PRs are
/// measurable instead of anecdotal.
///
/// The shape is deliberately flat — a handful of top-level fields plus an
/// array of row objects, scalars only — so diffs stay readable and any JSON
/// consumer can load it without a schema:
///
/// ```json
/// {
///   "bench": "experiment1",
///   "wall_seconds": 0.35,
///   "rows": [
///     {"scheme": "hash", "tagents": 10, "events_per_sec": 3.1e6, ...}
///   ]
/// }
/// ```
class BenchReport {
 public:
  /// One flat JSON object: ordered key → scalar.
  class Row {
   public:
    Row& set(const std::string& key, double value);
    Row& set(const std::string& key, std::int64_t value);
    Row& set(const std::string& key, std::uint64_t value);
    Row& set(const std::string& key, const std::string& value);
    Row& set(const std::string& key, const char* value);

    /// Spread a Summary into `<prefix>_{count,mean,p50,p95,max}` fields —
    /// the location-time digest the experiments report.
    Row& add_summary(const std::string& prefix, const Summary& summary);

    std::string json() const;

   private:
    enum class Kind { kNumber, kInteger, kString };
    struct Field {
      std::string key;
      Kind kind;
      double number;
      std::int64_t integer;
      std::string text;
    };
    std::vector<Field> fields_;
  };

  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  const std::string& name() const noexcept { return name_; }

  /// Top-level metadata/aggregate fields (same scalar types as rows).
  Row& meta() noexcept { return meta_; }

  /// Append and return a data row.
  Row& add_row();

  std::size_t row_count() const noexcept { return rows_.size(); }

  /// Full document as pretty-printed JSON.
  std::string json() const;

  /// `BENCH_<name>.json` in the current working directory.
  std::string default_path() const { return "BENCH_" + name_ + ".json"; }

  /// Write the document to `path` (or `default_path()` when empty).
  /// Returns the path written, empty string on I/O failure.
  std::string write(const std::string& path = "") const;

 private:
  std::string name_;
  Row meta_;
  std::vector<Row> rows_;
};

}  // namespace agentloc::util
