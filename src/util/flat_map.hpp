#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "util/rng.hpp"  // mix64

namespace agentloc::util {

/// Open-addressing hash map for integer keys with a reserved "empty" key.
///
/// `std::unordered_map` heap-allocates a node per entry, which makes the hash
/// tree's leaf index the dominant cost of copying or deserializing a tree:
/// every clone pays one malloc/free pair per leaf just for index bookkeeping.
/// This map keeps all slots in one contiguous array (linear probing,
/// power-of-two capacity, backward-shift deletion), so inserts and clears
/// never touch the allocator once capacity is reached and finds probe
/// adjacent cache lines instead of chasing list nodes.
///
/// `kEmptyKey` marks vacant slots and therefore can never be inserted;
/// callers pick a value outside the key domain (the hash tree uses
/// `kNoIAgent`, which no leaf may carry).
template <typename Key, typename Value, Key kEmptyKey>
class FlatMap {
 public:
  FlatMap() = default;

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  /// Allocated slots (zero until the first insert); `capacity() *
  /// sizeof(slot)` is the map's resident footprint, which the platform's
  /// memory accounting reports.
  std::size_t capacity() const noexcept { return slots_.size(); }

  /// Grow (never shrink) so `count` entries fit without rehashing.
  void reserve(std::size_t count) {
    std::size_t want = kMinCapacity;
    while (want * 3 < count * 4 + 4) want <<= 1;  // keep load below 3/4
    if (want > slots_.size()) rehash(want);
  }

  void clear() noexcept {
    for (Slot& slot : slots_) {
      slot.key = kEmptyKey;
      slot.value = Value{};
    }
    size_ = 0;
  }

  /// Visit every (key, value) pair, in unspecified (slot) order. The
  /// callback must not insert into or erase from the map — collect keys
  /// first for erase-while-iterating patterns.
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (Slot& slot : slots_) {
      if (slot.key != kEmptyKey) fn(slot.key, slot.value);
    }
  }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Slot& slot : slots_) {
      if (slot.key != kEmptyKey) fn(slot.key, slot.value);
    }
  }

  /// Remove every entry matching `pred(key, value)` in one pass, handing
  /// each removed pair to `sink(key, std::move(value))`. Survivors are
  /// recompacted by one in-place rehash — O(capacity) total however the
  /// matches are distributed, instead of one backward-shift erase per match.
  /// Returns the number of entries removed.
  template <typename Pred, typename Sink>
  std::size_t extract_if(Pred&& pred, Sink&& sink) {
    std::size_t removed = 0;
    for (Slot& slot : slots_) {
      if (slot.key == kEmptyKey || !pred(slot.key, slot.value)) continue;
      sink(slot.key, std::move(slot.value));
      slot.key = kEmptyKey;
      slot.value = Value{};
      ++removed;
    }
    if (removed > 0) {
      size_ -= removed;
      // The holes break linear-probe chains; one rehash restores every
      // survivor's reachability from its home slot.
      rehash(slots_.size());
    }
    return removed;
  }

  Value* find(Key key) noexcept {
    const std::size_t idx = locate(key);
    return idx != kNotFound ? &slots_[idx].value : nullptr;
  }

  const Value* find(Key key) const noexcept {
    const std::size_t idx = locate(key);
    return idx != kNotFound ? &slots_[idx].value : nullptr;
  }

  bool contains(Key key) const noexcept { return locate(key) != kNotFound; }

  const Value& at(Key key) const {
    const std::size_t idx = locate(key);
    if (idx == kNotFound) throw std::out_of_range("FlatMap::at: missing key");
    return slots_[idx].value;
  }

  /// Insert `value` under `key` if absent; returns false (and leaves the
  /// existing mapping untouched) if the key is already present. Matches
  /// `unordered_map::emplace` semantics for this use.
  bool emplace(Key key, Value value) {
    maybe_grow();
    std::size_t idx = slot_of(key);
    while (slots_[idx].key != kEmptyKey) {
      if (slots_[idx].key == key) return false;
      idx = (idx + 1) & mask();
    }
    slots_[idx].key = key;
    slots_[idx].value = std::move(value);
    ++size_;
    return true;
  }

  /// Insert-or-overwrite access, as in `map[key] = value`.
  Value& operator[](Key key) {
    maybe_grow();
    std::size_t idx = slot_of(key);
    while (slots_[idx].key != kEmptyKey) {
      if (slots_[idx].key == key) return slots_[idx].value;
      idx = (idx + 1) & mask();
    }
    slots_[idx].key = key;
    slots_[idx].value = Value{};
    ++size_;
    return slots_[idx].value;
  }

  /// Remove `key`; returns whether it was present. Linear probing requires
  /// backward-shift deletion: entries displaced past the hole are slid back
  /// so every remaining entry stays reachable from its home slot.
  bool erase(Key key) {
    std::size_t hole = locate(key);
    if (hole == kNotFound) return false;
    std::size_t cur = (hole + 1) & mask();
    while (slots_[cur].key != kEmptyKey) {
      const std::size_t home = slot_of(slots_[cur].key);
      if (((cur - home) & mask()) >= ((cur - hole) & mask())) {
        slots_[hole] = std::move(slots_[cur]);
        hole = cur;
      }
      cur = (cur + 1) & mask();
    }
    slots_[hole].key = kEmptyKey;
    slots_[hole].value = Value{};  // release resources of move-only values
    --size_;
    return true;
  }

 private:
  struct Slot {
    Key key = kEmptyKey;
    Value value{};
  };

  static constexpr std::size_t kMinCapacity = 8;
  static constexpr std::size_t kNotFound = static_cast<std::size_t>(-1);

  std::size_t mask() const noexcept { return slots_.size() - 1; }

  std::size_t slot_of(Key key) const noexcept {
    return static_cast<std::size_t>(mix64(static_cast<std::uint64_t>(key))) &
           mask();
  }

  std::size_t locate(Key key) const noexcept {
    if (slots_.empty()) return kNotFound;
    std::size_t idx = slot_of(key);
    while (slots_[idx].key != kEmptyKey) {
      if (slots_[idx].key == key) return idx;
      idx = (idx + 1) & mask();
    }
    return kNotFound;
  }

  void maybe_grow() {
    if (slots_.empty()) {
      rehash(kMinCapacity);
    } else if ((size_ + 1) * 4 > slots_.size() * 3) {
      rehash(slots_.size() * 2);
    }
  }

  void rehash(std::size_t capacity) {
    std::vector<Slot> old = std::move(slots_);
    slots_.clear();
    slots_.resize(capacity);  // resize, not assign: Value may be move-only
    for (Slot& slot : old) {
      if (slot.key == kEmptyKey) continue;
      std::size_t idx = slot_of(slot.key);
      while (slots_[idx].key != kEmptyKey) idx = (idx + 1) & mask();
      slots_[idx] = std::move(slot);
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
};

}  // namespace agentloc::util
