#include "util/bench_report.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>

namespace agentloc::util {

namespace {

std::string escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string number_to_json(double value) {
  if (!std::isfinite(value)) return "null";  // JSON has no NaN/inf
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", value);
  return buf;
}

}  // namespace

BenchReport::Row& BenchReport::Row::set(const std::string& key, double value) {
  fields_.push_back(Field{key, Kind::kNumber, value, 0, {}});
  return *this;
}

BenchReport::Row& BenchReport::Row::set(const std::string& key,
                                        std::int64_t value) {
  fields_.push_back(Field{key, Kind::kInteger, 0, value, {}});
  return *this;
}

BenchReport::Row& BenchReport::Row::set(const std::string& key,
                                        std::uint64_t value) {
  return set(key, static_cast<std::int64_t>(value));
}

BenchReport::Row& BenchReport::Row::set(const std::string& key,
                                        const std::string& value) {
  fields_.push_back(Field{key, Kind::kString, 0, 0, value});
  return *this;
}

BenchReport::Row& BenchReport::Row::set(const std::string& key,
                                        const char* value) {
  return set(key, std::string(value));
}

BenchReport::Row& BenchReport::Row::add_summary(const std::string& prefix,
                                                const Summary& summary) {
  set(prefix + "_count", static_cast<std::uint64_t>(summary.count()));
  if (!summary.empty()) {
    set(prefix + "_mean", summary.mean());
    set(prefix + "_p50", summary.percentile(50));
    set(prefix + "_p95", summary.percentile(95));
    set(prefix + "_max", summary.max());
  }
  return *this;
}

std::string BenchReport::Row::json() const {
  std::string out = "{";
  bool first = true;
  for (const Field& field : fields_) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + escape(field.key) + "\": ";
    switch (field.kind) {
      case Kind::kNumber:
        out += number_to_json(field.number);
        break;
      case Kind::kInteger:
        out += std::to_string(field.integer);
        break;
      case Kind::kString:
        out += "\"" + escape(field.text) + "\"";
        break;
    }
  }
  out += "}";
  return out;
}

BenchReport::Row& BenchReport::add_row() {
  rows_.emplace_back();
  return rows_.back();
}

std::string BenchReport::json() const {
  std::string out = "{\n  \"bench\": \"" + escape(name_) + "\"";
  const std::string meta = meta_.json();
  if (meta.size() > 2) {  // strip the braces, splice fields at top level
    out += ",\n  " + meta.substr(1, meta.size() - 2);
  }
  out += ",\n  \"rows\": [";
  bool first = true;
  for (const Row& row : rows_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    out += row.json();
  }
  out += rows_.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

std::string BenchReport::write(const std::string& path) const {
  const std::string target = path.empty() ? default_path() : path;
  std::ofstream out(target);
  if (!out) return "";
  out << json();
  out.flush();
  return out ? target : "";
}

}  // namespace agentloc::util
