#include "util/thread_pool.hpp"

#include <atomic>
#include <exception>
#include <utility>

namespace agentloc::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(Task task) {
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

std::size_t ThreadPool::default_threads() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

void ThreadPool::worker_loop() {
  std::unique_lock lock(mutex_);
  for (;;) {
    work_available_.wait(
        lock, [this] { return shutting_down_ || !queue_.empty(); });
    if (queue_.empty()) return;  // shutting down and drained
    Task task = std::move(queue_.front());
    queue_.pop_front();
    ++in_flight_;
    lock.unlock();
    task();
    lock.lock();
    --in_flight_;
    if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
  }
}

void parallel_for(std::size_t count, std::size_t threads,
                  const std::function<void(std::size_t)>& body) {
  if (count == 0) return;

  // First exception wins; remaining indices still run — on both paths — so
  // results for other indices stay usable by the caller's catch and the
  // pool drains cleanly.
  if (threads <= 1 || count == 1) {
    std::exception_ptr first_error;
    for (std::size_t i = 0; i < count; ++i) {
      try {
        body(i);
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
    return;
  }

  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  ThreadPool pool(threads < count ? threads : count);
  for (std::size_t i = 0; i < count; ++i) {
    pool.submit([&, i] {
      try {
        body(i);
      } catch (...) {
        if (!failed.exchange(true)) {
          std::lock_guard lock(error_mutex);
          first_error = std::current_exception();
        }
      }
    });
  }
  pool.wait_idle();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace agentloc::util
