#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace agentloc::util {

/// Mix a 64-bit value through the SplitMix64 finalizer. Used both to seed
/// generators and as the library's default id-bit mixer: agent ids produced
/// by counters become uniformly distributed bit patterns, which is the
/// distribution extendible hashing assumes.
std::uint64_t mix64(std::uint64_t x) noexcept;

/// Deterministic pseudo-random generator (xoshiro256**).
///
/// Every stochastic component in the library — workload generation, latency
/// jitter, failure injection — draws from an `Rng` seeded from the experiment
/// configuration, so whole simulations replay bit-identically. Satisfies
/// `std::uniform_random_bit_generator`.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }
  std::uint64_t next() noexcept;

  /// Uniform integer in [0, bound). `bound` must be > 0 (debiased via
  /// rejection sampling).
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Exponentially distributed value with the given mean (> 0). The workhorse
  /// of Poisson arrival processes in the workload generators.
  double exponential(double mean) noexcept;

  /// Bernoulli trial.
  bool chance(double probability) noexcept;

  /// Fork an independent, deterministic child stream. Components receive
  /// their own stream so adding a draw in one module cannot perturb another.
  Rng fork() noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      using std::swap;
      swap(items[i - 1], items[next_below(i)]);
    }
  }

  /// Zipf-distributed rank in [0, n) with skew `s` (s = 0 is uniform).
  /// Used for skewed query popularity in ablation workloads.
  std::size_t zipf(std::size_t n, double s) noexcept;

 private:
  std::uint64_t state_[4];
};

}  // namespace agentloc::util
