#include "util/buffer_pool.hpp"

#include <utility>

namespace agentloc::util {

std::vector<std::uint8_t> BufferPool::acquire(std::size_t min_capacity) {
  ++stats_.acquires;
  if (!pool_.empty()) {
    std::vector<std::uint8_t> buffer = std::move(pool_.back());
    pool_.pop_back();
    retained_bytes_ -= buffer.capacity();
    ++stats_.reuses;
    if (buffer.capacity() < min_capacity) buffer.reserve(min_capacity);
    return buffer;
  }
  std::vector<std::uint8_t> buffer;
  if (min_capacity > 0) buffer.reserve(min_capacity);
  return buffer;
}

void BufferPool::release(std::vector<std::uint8_t>&& buffer) {
  ++stats_.releases;
  buffer.clear();
  if (buffer.capacity() == 0 || pool_.size() >= config_.max_buffers ||
      retained_bytes_ + buffer.capacity() > config_.max_retained_bytes) {
    ++stats_.discards;
    return;  // let the vector free its storage
  }
  retained_bytes_ += buffer.capacity();
  pool_.push_back(std::move(buffer));
}

}  // namespace agentloc::util
