#include "util/logging.hpp"

#include <cstdio>
#include <utility>

namespace agentloc::util {

std::string_view to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() = default;

void Logger::set_sink(Sink sink) { sink_ = std::move(sink); }

void Logger::set_time_source(TimeSource source) { time_ = std::move(source); }

void Logger::log(LogLevel level, std::string_view component,
                 std::string_view text) {
  if (!enabled(level)) return;
  std::string line;
  line.reserve(component.size() + text.size() + 32);
  if (time_) {
    char stamp[32];
    std::snprintf(stamp, sizeof stamp, "[%10.3fms] ", time_());
    line += stamp;
  }
  line += to_string(level);
  line += " ";
  line += component;
  line += ": ";
  line += text;
  if (sink_) {
    sink_(level, line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

}  // namespace agentloc::util
