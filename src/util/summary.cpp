#include "util/summary.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace agentloc::util {

void Summary::add(double value) {
  samples_.push_back(value);
  sum_ += value;
  sorted_valid_ = false;
}

void Summary::merge(const Summary& other) {
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sum_ += other.sum_;
  sorted_valid_ = false;
}

double Summary::mean() const noexcept {
  return samples_.empty() ? 0.0 : sum_ / static_cast<double>(samples_.size());
}

double Summary::min() const noexcept {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double Summary::max() const noexcept {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double Summary::stddev() const noexcept {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double s : samples_) acc += (s - m) * (s - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

void Summary::ensure_sorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double Summary::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  if (p < 0.0 || p > 100.0) {
    throw std::invalid_argument("Summary::percentile: p outside [0, 100]");
  }
  ensure_sorted();
  const auto n = static_cast<double>(sorted_.size());
  auto rank = static_cast<std::size_t>(std::ceil(p / 100.0 * n));
  if (rank > 0) --rank;
  if (rank >= sorted_.size()) rank = sorted_.size() - 1;
  return sorted_[rank];
}

double Summary::trimmed_mean(double fraction) const {
  if (samples_.empty()) return 0.0;
  if (fraction < 0.0 || fraction >= 0.5) {
    throw std::invalid_argument("Summary::trimmed_mean: fraction in [0, 0.5)");
  }
  ensure_sorted();
  const auto drop =
      static_cast<std::size_t>(fraction * static_cast<double>(sorted_.size()));
  if (2 * drop >= sorted_.size()) return median();
  double acc = 0.0;
  for (std::size_t i = drop; i < sorted_.size() - drop; ++i) acc += sorted_[i];
  return acc / static_cast<double>(sorted_.size() - 2 * drop);
}

std::string Summary::str() const {
  std::ostringstream os;
  os << "n=" << count() << " mean=" << mean() << " p50=" << percentile(50)
     << " p95=" << percentile(95) << " max=" << max();
  return os.str();
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  if (!(lo < hi) || buckets == 0) {
    throw std::invalid_argument("Histogram: require lo < hi and buckets > 0");
  }
}

void Histogram::add(double value) {
  ++total_;
  if (value < lo_) {
    ++underflow_;
  } else if (value >= hi_) {
    ++overflow_;
  } else {
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    auto idx = static_cast<std::size_t>((value - lo_) / width);
    if (idx >= counts_.size()) idx = counts_.size() - 1;  // fp edge
    ++counts_[idx];
  }
}

double Histogram::bucket_lo(std::size_t i) const noexcept {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i);
}

std::string Histogram::render(std::size_t width) const {
  std::size_t peak = 1;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = counts_[i] * width / peak;
    os << "[" << bucket_lo(i) << ", " << bucket_lo(i + 1) << ") "
       << std::string(bar, '#') << " " << counts_[i] << "\n";
  }
  if (underflow_ != 0) os << "underflow " << underflow_ << "\n";
  if (overflow_ != 0) os << "overflow " << overflow_ << "\n";
  return os.str();
}

}  // namespace agentloc::util
