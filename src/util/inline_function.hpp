#pragma once

#include <cassert>
#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace agentloc::util {

/// Move-only type-erased callable with small-buffer optimization.
///
/// `std::function` heap-allocates any capture larger than ~16 bytes, which
/// made every message delivery in the simulator hot loop an allocation. This
/// type stores callables up to `Capacity` bytes inline (larger ones fall back
/// to the heap) so the common scheduling path allocates nothing. It is
/// move-only — the simulator's event pool never copies handlers — which also
/// lets it hold move-only captures (`std::unique_ptr`, etc.) that
/// `std::function` rejects outright.
template <typename Signature, std::size_t Capacity = 48>
class InlineFunction;

template <typename R, typename... Args, std::size_t Capacity>
class InlineFunction<R(Args...), Capacity> {
 public:
  static constexpr std::size_t kCapacity = Capacity;

  InlineFunction() noexcept = default;
  InlineFunction(std::nullptr_t) noexcept {}  // NOLINT(runtime/explicit)

  /// Wrap any callable. Stored inline when it fits (size, alignment, and a
  /// noexcept move constructor — relocation must not throw); heap otherwise.
  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<D, InlineFunction> &&
                std::is_invocable_r_v<R, D&, Args...>>>
  InlineFunction(F&& fn) {  // NOLINT(runtime/explicit)
    if constexpr (stored_inline<D>()) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(fn));
      vtable_ = &kInlineVTable<D>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(fn)));
      vtable_ = &kHeapVTable<D>;
    }
  }

  InlineFunction(InlineFunction&& other) noexcept { take(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      take(other);
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  /// Destroy the held callable (releasing its captures) and become empty.
  void reset() noexcept {
    if (vtable_ != nullptr) {
      if (!vtable_->trivial) vtable_->destroy(storage_);
      vtable_ = nullptr;
    }
  }

  explicit operator bool() const noexcept { return vtable_ != nullptr; }

  R operator()(Args... args) {
    assert(vtable_ != nullptr && "calling an empty InlineFunction");
    return vtable_->invoke(storage_, std::forward<Args>(args)...);
  }

  /// Whether a callable of type `F` would be stored without heap allocation.
  template <typename F>
  static constexpr bool stored_inline() noexcept {
    return sizeof(F) <= Capacity && alignof(F) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<F>;
  }

 private:
  struct VTable {
    R (*invoke)(void* storage, Args&&... args);
    // Move the callable from `src` storage into `dst` storage and destroy
    // the source; never throws (inline storage requires a noexcept move).
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
    // Trivially-copyable inline callables move by memcpy and need no
    // destructor call — the hot path for the simulator's event pool.
    bool trivial;
  };

  template <typename F>
  struct InlineOps {
    static R invoke(void* storage, Args&&... args) {
      return (*static_cast<F*>(storage))(std::forward<Args>(args)...);
    }
    static void relocate(void* dst, void* src) noexcept {
      F* from = static_cast<F*>(src);
      ::new (dst) F(std::move(*from));
      from->~F();
    }
    static void destroy(void* storage) noexcept {
      static_cast<F*>(storage)->~F();
    }
  };

  template <typename F>
  struct HeapOps {
    static F*& slot(void* storage) noexcept {
      return *static_cast<F**>(storage);
    }
    static R invoke(void* storage, Args&&... args) {
      return (*slot(storage))(std::forward<Args>(args)...);
    }
    static void relocate(void* dst, void* src) noexcept {
      ::new (dst) F*(slot(src));  // steal the pointer; nothing to destroy
    }
    static void destroy(void* storage) noexcept { delete slot(storage); }
  };

  template <typename F>
  static constexpr VTable kInlineVTable{
      &InlineOps<F>::invoke, &InlineOps<F>::relocate, &InlineOps<F>::destroy,
      std::is_trivially_copyable_v<F> && std::is_trivially_destructible_v<F>};
  template <typename F>
  static constexpr VTable kHeapVTable{&HeapOps<F>::invoke,
                                      &HeapOps<F>::relocate,
                                      &HeapOps<F>::destroy, false};

  void take(InlineFunction& other) noexcept {
    if (other.vtable_ != nullptr) {
      if (other.vtable_->trivial) {
        std::memcpy(storage_, other.storage_, Capacity);
      } else {
        other.vtable_->relocate(storage_, other.storage_);
      }
      vtable_ = other.vtable_;
      other.vtable_ = nullptr;
    }
  }

  static_assert(Capacity >= sizeof(void*),
                "capacity must at least hold the heap fallback pointer");
  alignas(std::max_align_t) unsigned char storage_[Capacity];
  const VTable* vtable_ = nullptr;
};

}  // namespace agentloc::util
