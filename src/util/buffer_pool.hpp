#pragma once

#include <cstdint>
#include <vector>

namespace agentloc::util {

/// Recycles byte buffers across frame encodes and socket reads so the wire
/// layer's steady state allocates nothing (the byte-level analogue of the
/// platform's pooled inbox rings, DESIGN.md §10/§17).
///
/// Buffers are plain `std::vector<std::uint8_t>`s handed out *cleared but
/// warm*: a released buffer keeps its heap allocation and comes back with
/// `size() == 0` and its old capacity. The pool is LIFO (the most recently
/// used buffer is the cache-warmest) and bounded both in buffer count and in
/// retained bytes; releases beyond either bound simply free the buffer.
///
/// Single-threaded by design, like every other pool in the codebase: each
/// transport/decoder owns its pool or shares one within a thread.
class BufferPool {
 public:
  struct Config {
    std::size_t max_buffers = 64;
    std::size_t max_retained_bytes = 8u << 20;  // 8 MiB
  };

  struct Stats {
    std::uint64_t acquires = 0;
    std::uint64_t reuses = 0;    ///< acquires served from the pool
    std::uint64_t releases = 0;
    std::uint64_t discards = 0;  ///< releases dropped by the bounds
  };

  BufferPool() = default;
  explicit BufferPool(Config config) noexcept : config_(config) {}

  /// A cleared buffer with at least `min_capacity` reserved. Pops the most
  /// recently released pooled buffer when one exists (growing it if it is
  /// too small); otherwise allocates fresh.
  std::vector<std::uint8_t> acquire(std::size_t min_capacity = 0);

  /// Return a buffer to the pool. The buffer is cleared; its capacity is
  /// retained unless the pool is at either bound.
  void release(std::vector<std::uint8_t>&& buffer);

  std::size_t pooled_count() const noexcept { return pool_.size(); }
  std::size_t retained_bytes() const noexcept { return retained_bytes_; }
  const Stats& stats() const noexcept { return stats_; }
  const Config& config() const noexcept { return config_; }

 private:
  Config config_;
  Stats stats_;
  std::vector<std::vector<std::uint8_t>> pool_;
  std::size_t retained_bytes_ = 0;
};

}  // namespace agentloc::util
