#include "util/bitstring.hpp"

#include <ostream>
#include <stdexcept>

namespace agentloc::util {

BitString::BitString(std::size_t count, bool bit) {
  words_.assign((count + 63) / 64, bit ? ~std::uint64_t{0} : 0);
  size_ = count;
  if (bit && count % 64 != 0) {
    // Clear the unused low bits of the last word so hashing/equality can
    // compare words directly.
    words_.back() &= ~std::uint64_t{0} << (64 - count % 64);
  }
}

BitString::BitString(std::initializer_list<bool> bits) {
  for (bool b : bits) push_back(b);
}

BitString BitString::parse(std::string_view text) {
  BitString out;
  for (char c : text) {
    if (c == '0') {
      out.push_back(false);
    } else if (c == '1') {
      out.push_back(true);
    } else {
      throw std::invalid_argument("BitString::parse: invalid character '" +
                                  std::string(1, c) + "'");
    }
  }
  return out;
}

BitString BitString::from_uint(std::uint64_t value, std::size_t width) {
  if (width > 64) {
    throw std::invalid_argument("BitString::from_uint: width > 64");
  }
  BitString out;
  for (std::size_t i = 0; i < width; ++i) {
    out.push_back((value >> (width - 1 - i)) & 1u);
  }
  return out;
}

bool BitString::at(std::size_t i) const {
  if (i >= size_) throw std::out_of_range("BitString::at");
  return get_unchecked(i);
}

void BitString::push_back(bool bit) {
  if (size_ % 64 == 0) words_.push_back(0);
  ++size_;
  set_unchecked(size_ - 1, bit);
}

void BitString::pop_back() {
  if (size_ == 0) throw std::logic_error("BitString::pop_back on empty");
  set_unchecked(size_ - 1, false);
  --size_;
  if (size_ % 64 == 0) words_.pop_back();
}

void BitString::set(std::size_t i, bool bit) {
  if (i >= size_) throw std::out_of_range("BitString::set");
  set_unchecked(i, bit);
}

void BitString::append(const BitString& other) {
  const std::size_t n = other.size_;  // snapshot: allows self-append
  for (std::size_t i = 0; i < n; ++i) push_back(other.get_unchecked(i));
}

BitString BitString::prefix(std::size_t count) const {
  if (count > size_) throw std::out_of_range("BitString::prefix");
  BitString out = *this;
  out.size_ = count;
  out.words_.resize((count + 63) / 64);
  if (count % 64 != 0) {
    out.words_.back() &= ~std::uint64_t{0} << (64 - count % 64);
  }
  return out;
}

BitString BitString::substr(std::size_t begin, std::size_t count) const {
  if (begin > size_ || count > size_ - begin) {
    throw std::out_of_range("BitString::substr");
  }
  BitString out;
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(get_unchecked(begin + i));
  }
  return out;
}

BitString BitString::suffix_from(std::size_t begin) const {
  if (begin > size_) throw std::out_of_range("BitString::suffix_from");
  return substr(begin, size_ - begin);
}

bool BitString::is_prefix_of(const BitString& other) const noexcept {
  if (size_ > other.size_) return false;
  return common_prefix_length(other) == size_;
}

std::size_t BitString::common_prefix_length(
    const BitString& other) const noexcept {
  const std::size_t limit = size_ < other.size_ ? size_ : other.size_;
  std::size_t i = 0;
  // Word-at-a-time fast path.
  while (i + 64 <= limit) {
    const std::uint64_t diff = words_[i >> 6] ^ other.words_[i >> 6];
    if (diff != 0) {
      return i + static_cast<std::size_t>(__builtin_clzll(diff));
    }
    i += 64;
  }
  while (i < limit && get_unchecked(i) == other.get_unchecked(i)) ++i;
  return i;
}

std::uint64_t BitString::to_uint() const noexcept {
  std::uint64_t value = 0;
  const std::size_t n = size_ < 64 ? size_ : 64;
  for (std::size_t i = 0; i < n; ++i) {
    value = (value << 1) | static_cast<std::uint64_t>(get_unchecked(i));
  }
  return value;
}

std::string BitString::to_string() const {
  std::string out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(get_unchecked(i) ? '1' : '0');
  }
  return out;
}

bool operator==(const BitString& a, const BitString& b) noexcept {
  return a.size_ == b.size_ && a.words_ == b.words_;
}

std::strong_ordering operator<=>(const BitString& a,
                                 const BitString& b) noexcept {
  const std::size_t common = a.common_prefix_length(b);
  if (common == a.size_ && common == b.size_) {
    return std::strong_ordering::equal;
  }
  if (common == a.size_) return std::strong_ordering::less;
  if (common == b.size_) return std::strong_ordering::greater;
  return a.get_unchecked(common) ? std::strong_ordering::greater
                                 : std::strong_ordering::less;
}

std::size_t BitString::hash() const noexcept {
  // FNV-1a over the packed words plus the length.
  std::uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(size_);
  for (std::uint64_t w : words_) mix(w);
  return static_cast<std::size_t>(h);
}

std::ostream& operator<<(std::ostream& os, const BitString& bits) {
  return os << bits.to_string();
}

}  // namespace agentloc::util
