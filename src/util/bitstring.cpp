#include "util/bitstring.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <ostream>
#include <stdexcept>

namespace agentloc::util {

void BitString::ensure_capacity(std::size_t words) {
  if (words <= cap_words_) return;
  std::size_t new_cap = cap_words_ * 2;
  if (new_cap < words) new_cap = words;
  auto* fresh = new std::uint64_t[new_cap];
  std::memcpy(fresh, words_ptr(), word_count() * sizeof(std::uint64_t));
  release();
  heap_ = fresh;
  cap_words_ = new_cap;
}

BitString::BitString(const BitString& other)
    : size_(other.size_), cap_words_(kInlineWords) {
  const std::size_t wc = other.word_count();
  if (wc > kInlineWords) {
    heap_ = new std::uint64_t[wc];
    cap_words_ = wc;
  }
  std::memcpy(words_ptr(), other.words_ptr(), wc * sizeof(std::uint64_t));
}

BitString::BitString(BitString&& other) noexcept
    : size_(other.size_), cap_words_(other.cap_words_) {
  if (other.is_inline()) {
    std::memcpy(sbo_, other.sbo_, other.word_count() * sizeof(std::uint64_t));
  } else {
    heap_ = other.heap_;
  }
  other.size_ = 0;
  other.cap_words_ = kInlineWords;
}

BitString& BitString::operator=(const BitString& other) {
  if (this == &other) return *this;
  const std::size_t wc = other.word_count();
  ensure_capacity(wc);
  std::memcpy(words_ptr(), other.words_ptr(), wc * sizeof(std::uint64_t));
  size_ = other.size_;
  return *this;
}

BitString& BitString::operator=(BitString&& other) noexcept {
  if (this == &other) return *this;
  release();
  size_ = other.size_;
  cap_words_ = other.cap_words_;
  if (other.is_inline()) {
    std::memcpy(sbo_, other.sbo_, other.word_count() * sizeof(std::uint64_t));
    cap_words_ = kInlineWords;
  } else {
    heap_ = other.heap_;
  }
  other.size_ = 0;
  other.cap_words_ = kInlineWords;
  return *this;
}

BitString::BitString(std::size_t count, bool bit)
    : size_(0), cap_words_(kInlineWords) {
  const std::size_t wc = (count + 63) >> 6;
  ensure_capacity(wc);
  std::uint64_t* w = words_ptr();
  const std::uint64_t fill = bit ? ~std::uint64_t{0} : 0;
  for (std::size_t i = 0; i < wc; ++i) w[i] = fill;
  size_ = count;
  clear_tail();
}

BitString::BitString(std::initializer_list<bool> bits)
    : size_(0), cap_words_(kInlineWords) {
  ensure_capacity((bits.size() + 63) >> 6);
  for (bool b : bits) push_back(b);
}

BitString BitString::parse(std::string_view text) {
  BitString out;
  out.ensure_capacity((text.size() + 63) >> 6);
  for (char c : text) {
    if (c == '0') {
      out.push_back(false);
    } else if (c == '1') {
      out.push_back(true);
    } else {
      throw std::invalid_argument("BitString::parse: invalid character '" +
                                  std::string(1, c) + "'");
    }
  }
  return out;
}

BitString BitString::from_uint(std::uint64_t value, std::size_t width) {
  if (width > 64) {
    throw std::invalid_argument("BitString::from_uint: width > 64");
  }
  BitString out;
  if (width == 0) return out;
  out.sbo_[0] = width == 64
                    ? value
                    : (value & ((std::uint64_t{1} << width) - 1))
                          << (64 - width);
  out.size_ = width;
  return out;
}

BitString BitString::from_packed_msb(const std::uint8_t* data,
                                     std::size_t bit_count) {
  BitString out;
  if (bit_count == 0) return out;
  const std::size_t wc = (bit_count + 63) >> 6;
  out.ensure_capacity(wc);
  std::uint64_t* w = out.words_ptr();
  const std::size_t byte_count = (bit_count + 7) / 8;
  for (std::size_t i = 0; i < wc; ++i) {
    const std::size_t base = i * 8;
    const std::size_t n = std::min<std::size_t>(8, byte_count - base);
    std::uint64_t word = 0;
    for (std::size_t j = 0; j < n; ++j) {
      word |= static_cast<std::uint64_t>(data[base + j]) << (56 - 8 * j);
    }
    w[i] = word;
  }
  out.size_ = bit_count;
  out.clear_tail();
  return out;
}

void BitString::pack_msb(std::uint8_t* out) const noexcept {
  const std::size_t byte_count = (size_ + 7) / 8;
  const std::uint64_t* w = words_ptr();
  for (std::size_t j = 0; j < byte_count; ++j) {
    out[j] = static_cast<std::uint8_t>(w[j >> 3] >> (56 - 8 * (j & 7)));
  }
}

bool BitString::at(std::size_t i) const {
  if (i >= size_) throw std::out_of_range("BitString::at");
  return get_unchecked(i);
}

void BitString::push_back(bool bit) {
  if ((size_ & 63) == 0) {
    ensure_capacity((size_ >> 6) + 1);
    words_ptr()[size_ >> 6] = 0;
  }
  ++size_;
  set_unchecked(size_ - 1, bit);
}

void BitString::pop_back() {
  if (size_ == 0) throw std::logic_error("BitString::pop_back on empty");
  set_unchecked(size_ - 1, false);
  --size_;
}

void BitString::set(std::size_t i, bool bit) {
  if (i >= size_) throw std::out_of_range("BitString::set");
  set_unchecked(i, bit);
}

void BitString::append(const BitString& other) {
  if (other.size_ == 0) return;
  if (this == &other) {
    // Self-append: a growth reallocation would invalidate the source.
    const BitString snapshot(other);
    append(snapshot);
    return;
  }
  const std::size_t new_size = size_ + other.size_;
  const std::size_t total_words = (new_size + 63) >> 6;
  ensure_capacity(total_words);
  std::uint64_t* w = words_ptr();
  const std::uint64_t* src = other.words_ptr();
  const std::size_t src_words = other.word_count();
  const std::size_t base = size_ >> 6;
  const unsigned off = size_ & 63;
  if (off == 0) {
    std::memcpy(w + base, src, src_words * sizeof(std::uint64_t));
  } else {
    // Each source word contributes its high `64 - off` bits to the current
    // tail word and its low `off` bits to the next.
    for (std::size_t i = 0; i < src_words; ++i) {
      w[base + i] |= src[i] >> off;
      if (base + i + 1 < total_words) {
        w[base + i + 1] = src[i] << (64 - off);
      }
    }
  }
  size_ = new_size;
}

BitString BitString::prefix(std::size_t count) const {
  if (count > size_) throw std::out_of_range("BitString::prefix");
  BitString out;
  if (count == 0) return out;
  const std::size_t wc = (count + 63) >> 6;
  out.ensure_capacity(wc);
  std::memcpy(out.words_ptr(), words_ptr(), wc * sizeof(std::uint64_t));
  out.size_ = count;
  out.clear_tail();
  return out;
}

BitString BitString::substr(std::size_t begin, std::size_t count) const {
  if (begin > size_ || count > size_ - begin) {
    throw std::out_of_range("BitString::substr");
  }
  BitString out;
  if (count == 0) return out;
  const std::size_t wc = (count + 63) >> 6;
  out.ensure_capacity(wc);
  std::uint64_t* dst = out.words_ptr();
  const std::uint64_t* src = words_ptr();
  const std::size_t base = begin >> 6;
  const unsigned off = begin & 63;
  if (off == 0) {
    std::memcpy(dst, src + base, wc * sizeof(std::uint64_t));
  } else {
    const std::size_t src_wc = word_count();
    for (std::size_t j = 0; j < wc; ++j) {
      const std::uint64_t hi = src[base + j] << off;
      const std::uint64_t lo =
          base + j + 1 < src_wc ? src[base + j + 1] >> (64 - off) : 0;
      dst[j] = hi | lo;
    }
  }
  out.size_ = count;
  out.clear_tail();
  return out;
}

BitString BitString::suffix_from(std::size_t begin) const {
  if (begin > size_) throw std::out_of_range("BitString::suffix_from");
  return substr(begin, size_ - begin);
}

bool BitString::is_prefix_of(const BitString& other) const noexcept {
  if (size_ > other.size_) return false;
  const std::uint64_t* a = words_ptr();
  const std::uint64_t* b = other.words_ptr();
  const std::size_t full = size_ >> 6;
  for (std::size_t i = 0; i < full; ++i) {
    if (a[i] != b[i]) return false;
  }
  const unsigned tail = size_ & 63;
  if (tail != 0) {
    const std::uint64_t mask = ~std::uint64_t{0} << (64 - tail);
    if (((a[full] ^ b[full]) & mask) != 0) return false;
  }
  return true;
}

std::size_t BitString::common_prefix_length(
    const BitString& other) const noexcept {
  const std::size_t limit = size_ < other.size_ ? size_ : other.size_;
  const std::uint64_t* a = words_ptr();
  const std::uint64_t* b = other.words_ptr();
  for (std::size_t i = 0; i < limit; i += 64) {
    const std::uint64_t diff = a[i >> 6] ^ b[i >> 6];
    if (diff != 0) {
      const std::size_t p =
          i + static_cast<std::size_t>(std::countl_zero(diff));
      return p < limit ? p : limit;
    }
  }
  return limit;
}

std::uint64_t BitString::to_uint() const noexcept {
  if (size_ == 0) return 0;
  const std::uint64_t word = words_ptr()[0];
  return size_ >= 64 ? word : word >> (64 - size_);
}

std::string BitString::to_string() const {
  std::string out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(get_unchecked(i) ? '1' : '0');
  }
  return out;
}

bool operator==(const BitString& a, const BitString& b) noexcept {
  if (a.size_ != b.size_) return false;
  return std::memcmp(a.words_ptr(), b.words_ptr(),
                     a.word_count() * sizeof(std::uint64_t)) == 0;
}

std::strong_ordering operator<=>(const BitString& a,
                                 const BitString& b) noexcept {
  const std::size_t common = a.common_prefix_length(b);
  if (common == a.size_ && common == b.size_) {
    return std::strong_ordering::equal;
  }
  if (common == a.size_) return std::strong_ordering::less;
  if (common == b.size_) return std::strong_ordering::greater;
  return a.get_unchecked(common) ? std::strong_ordering::greater
                                 : std::strong_ordering::less;
}

std::size_t BitString::hash() const noexcept {
  // FNV-1a over the packed words plus the length.
  std::uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(size_);
  const std::uint64_t* w = words_ptr();
  const std::size_t wc = word_count();
  for (std::size_t i = 0; i < wc; ++i) mix(w[i]);
  return static_cast<std::size_t>(h);
}

std::ostream& operator<<(std::ostream& os, const BitString& bits) {
  return os << bits.to_string();
}

}  // namespace agentloc::util
