#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace agentloc::util {

/// Tiny command-line flag parser shared by the bench and example binaries.
///
/// Accepts `--name=value`, `--name value`, and bare boolean `--name`.
/// Anything not starting with `--` is collected as a positional argument.
/// Unknown flags are tolerated and retrievable (so wrapper scripts can pass
/// experiment-specific knobs through), but each binary can call
/// `fail_on_unknown` after declaring its flags to get strict behaviour.
class Flags {
 public:
  Flags(int argc, const char* const* argv);

  /// Construct from a pre-split vector (used by tests).
  explicit Flags(const std::vector<std::string>& args);

  bool has(std::string_view name) const;

  std::optional<std::string> get(std::string_view name) const;

  std::string get_string(std::string_view name, std::string fallback) const;
  std::int64_t get_int(std::string_view name, std::int64_t fallback) const;
  double get_double(std::string_view name, double fallback) const;
  bool get_bool(std::string_view name, bool fallback) const;

  /// Comma-separated list of integers, e.g. `--agents=100,200,300`.
  std::vector<std::int64_t> get_int_list(
      std::string_view name, std::vector<std::int64_t> fallback) const;

  const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Record that `name` is a valid flag (used by `fail_on_unknown`).
  void declare(std::string_view name);

  /// Throws `std::invalid_argument` naming the first parsed flag that was
  /// never declared. Call after all `declare`/`get_*` calls.
  void fail_on_unknown() const;

 private:
  void parse(const std::vector<std::string>& args);

  std::map<std::string, std::string, std::less<>> values_;
  std::vector<std::string> positional_;
  mutable std::vector<std::string> declared_;
};

}  // namespace agentloc::util
