#include "util/flags.hpp"

#include <algorithm>
#include <stdexcept>

namespace agentloc::util {

namespace {
bool parse_bool_text(std::string_view text) {
  if (text == "1" || text == "true" || text == "yes" || text == "on") {
    return true;
  }
  if (text == "0" || text == "false" || text == "no" || text == "off") {
    return false;
  }
  throw std::invalid_argument("invalid boolean flag value: " +
                              std::string(text));
}
}  // namespace

Flags::Flags(int argc, const char* const* argv) {
  std::vector<std::string> args;
  args.reserve(argc > 0 ? static_cast<std::size_t>(argc) - 1 : 0);
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  parse(args);
}

Flags::Flags(const std::vector<std::string>& args) { parse(args); }

void Flags::parse(const std::vector<std::string>& args) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < args.size() && args[i + 1].rfind("--", 0) != 0) {
      values_[body] = args[++i];
    } else {
      values_[body] = "true";
    }
  }
}

bool Flags::has(std::string_view name) const {
  declared_.emplace_back(name);
  return values_.find(name) != values_.end();
}

std::optional<std::string> Flags::get(std::string_view name) const {
  declared_.emplace_back(name);
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Flags::get_string(std::string_view name,
                              std::string fallback) const {
  return get(name).value_or(std::move(fallback));
}

std::int64_t Flags::get_int(std::string_view name,
                            std::int64_t fallback) const {
  const auto text = get(name);
  if (!text) return fallback;
  return std::stoll(*text);
}

double Flags::get_double(std::string_view name, double fallback) const {
  const auto text = get(name);
  if (!text) return fallback;
  return std::stod(*text);
}

bool Flags::get_bool(std::string_view name, bool fallback) const {
  const auto text = get(name);
  if (!text) return fallback;
  return parse_bool_text(*text);
}

std::vector<std::int64_t> Flags::get_int_list(
    std::string_view name, std::vector<std::int64_t> fallback) const {
  const auto text = get(name);
  if (!text) return fallback;
  std::vector<std::int64_t> out;
  std::size_t pos = 0;
  while (pos <= text->size()) {
    const auto comma = text->find(',', pos);
    const auto end = comma == std::string::npos ? text->size() : comma;
    if (end > pos) out.push_back(std::stoll(text->substr(pos, end - pos)));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

void Flags::declare(std::string_view name) { declared_.emplace_back(name); }

void Flags::fail_on_unknown() const {
  for (const auto& [name, value] : values_) {
    (void)value;
    if (std::find(declared_.begin(), declared_.end(), name) ==
        declared_.end()) {
      throw std::invalid_argument("unknown flag: --" + name);
    }
  }
}

}  // namespace agentloc::util
