#include "util/bytebuffer.hpp"

#include <bit>
#include <cstring>
#include <stdexcept>

namespace agentloc::util {

void ByteWriter::write_u8(std::uint8_t value) { bytes_.push_back(value); }

void ByteWriter::write_u32(std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    bytes_.push_back(static_cast<std::uint8_t>(value >> shift));
  }
}

void ByteWriter::write_u64(std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    bytes_.push_back(static_cast<std::uint8_t>(value >> shift));
  }
}

void ByteWriter::write_varint(std::uint64_t value) {
  while (value >= 0x80) {
    bytes_.push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  bytes_.push_back(static_cast<std::uint8_t>(value));
}

void ByteWriter::write_varint4(std::uint32_t value) {
  const std::size_t at = bytes_.size();
  bytes_.resize(at + 4);
  patch_varint4(at, value);
}

void ByteWriter::patch_varint4(std::size_t offset, std::uint32_t value) {
  if (offset + 4 > bytes_.size()) {
    throw std::out_of_range("ByteWriter::patch_varint4: offset out of range");
  }
  if (value >= (1u << 28)) {
    throw std::length_error("ByteWriter::patch_varint4: value needs >28 bits");
  }
  bytes_[offset + 0] = static_cast<std::uint8_t>(value & 0x7f) | 0x80;
  bytes_[offset + 1] = static_cast<std::uint8_t>((value >> 7) & 0x7f) | 0x80;
  bytes_[offset + 2] = static_cast<std::uint8_t>((value >> 14) & 0x7f) | 0x80;
  bytes_[offset + 3] = static_cast<std::uint8_t>(value >> 21);
}

void ByteWriter::write_double(double value) {
  write_u64(std::bit_cast<std::uint64_t>(value));
}

void ByteWriter::write_string(std::string_view text) {
  write_varint(text.size());
  bytes_.insert(bytes_.end(), text.begin(), text.end());
}

void ByteWriter::write_bits(const BitString& bits) {
  write_varint(bits.size());
  const std::size_t byte_count = (bits.size() + 7) / 8;
  const std::size_t at = bytes_.size();
  bytes_.resize(at + byte_count);
  bits.pack_msb(bytes_.data() + at);
}

void ByteWriter::write_bytes(const std::uint8_t* data, std::size_t size) {
  bytes_.insert(bytes_.end(), data, data + size);
}

void ByteReader::require(std::size_t count) const {
  if (size_ - pos_ < count) {
    throw std::out_of_range("ByteReader: truncated input");
  }
}

std::uint8_t ByteReader::read_u8() {
  require(1);
  return data_[pos_++];
}

std::uint32_t ByteReader::read_u32() {
  require(4);
  std::uint32_t value = 0;
  for (int shift = 0; shift < 32; shift += 8) {
    value |= static_cast<std::uint32_t>(data_[pos_++]) << shift;
  }
  return value;
}

std::uint64_t ByteReader::read_u64() {
  require(8);
  std::uint64_t value = 0;
  for (int shift = 0; shift < 64; shift += 8) {
    value |= static_cast<std::uint64_t>(data_[pos_++]) << shift;
  }
  return value;
}

std::uint64_t ByteReader::read_varint() {
  std::uint64_t value = 0;
  int shift = 0;
  for (;;) {
    require(1);
    const std::uint8_t byte = data_[pos_++];
    if (shift >= 64 || (shift == 63 && (byte & 0x7e) != 0)) {
      throw std::invalid_argument("ByteReader: varint overflow");
    }
    value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
  }
}

double ByteReader::read_double() {
  return std::bit_cast<double>(read_u64());
}

std::string ByteReader::read_string() {
  const std::uint64_t size = read_varint();
  require(size);
  std::string out(reinterpret_cast<const char*>(data_ + pos_), size);
  pos_ += size;
  return out;
}

BitString ByteReader::read_bits() {
  const std::uint64_t count = read_varint();
  const std::size_t byte_count = (count + 7) / 8;
  require(byte_count);
  BitString out = BitString::from_packed_msb(data_ + pos_, count);
  pos_ += byte_count;
  return out;
}

}  // namespace agentloc::util
