#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace agentloc::util {

/// Power-of-two growable FIFO ring — the agent-inbox replacement for
/// `std::deque`.
///
/// libstdc++'s deque allocates a ~512-byte chunk the first time anything is
/// pushed and frees it again when the queue drains, so every burst of
/// messages into an idle inbox paid a malloc/free pair. The ring keeps one
/// contiguous power-of-two slab that only ever grows; emptied buffers retain
/// their capacity, which lets `AgentSystem` recycle them through a free list
/// across agent lifetimes instead of re-warming the allocator.
template <typename T>
class RingBuffer {
 public:
  RingBuffer() = default;

  RingBuffer(RingBuffer&& other) noexcept
      : slots_(std::move(other.slots_)),
        head_(other.head_),
        size_(other.size_) {
    other.slots_.clear();
    other.head_ = 0;
    other.size_ = 0;
  }

  RingBuffer& operator=(RingBuffer&& other) noexcept {
    if (this != &other) {
      slots_ = std::move(other.slots_);
      head_ = other.head_;
      size_ = other.size_;
      other.slots_.clear();
      other.head_ = 0;
      other.size_ = 0;
    }
    return *this;
  }

  RingBuffer(const RingBuffer&) = delete;
  RingBuffer& operator=(const RingBuffer&) = delete;

  bool empty() const noexcept { return size_ == 0; }
  std::size_t size() const noexcept { return size_; }
  std::size_t capacity() const noexcept { return slots_.size(); }

  void push_back(T value) {
    if (size_ == slots_.size()) grow();
    slots_[(head_ + size_) & mask()] = std::move(value);
    ++size_;
  }

  T& front() noexcept {
    assert(size_ > 0 && "front() on empty RingBuffer");
    return slots_[head_];
  }

  T pop_front() {
    assert(size_ > 0 && "pop_front() on empty RingBuffer");
    T out = std::move(slots_[head_]);
    head_ = (head_ + 1) & mask();
    --size_;
    return out;
  }

  /// Drop all queued values; capacity is retained for reuse.
  void clear() noexcept {
    for (std::size_t i = 0; i < size_; ++i) {
      slots_[(head_ + i) & mask()] = T{};
    }
    head_ = 0;
    size_ = 0;
  }

 private:
  /// First slab is deliberately tiny: most agent inboxes hold one or two
  /// messages at a time, and at million-agent populations the initial inbox
  /// slab is the dominant per-agent memory term (8 slots of ~136-byte
  /// `Message` cost ~1.1 KiB per agent; 2 slots cost a quarter of that).
  /// Busy inboxes still double their way up and keep the larger slab.
  static constexpr std::size_t kMinCapacity = 2;

  std::size_t mask() const noexcept { return slots_.size() - 1; }

  void grow() {
    const std::size_t next =
        slots_.empty() ? kMinCapacity : slots_.size() * 2;
    std::vector<T> grown(next);
    for (std::size_t i = 0; i < size_; ++i) {
      grown[i] = std::move(slots_[(head_ + i) & mask()]);
    }
    slots_ = std::move(grown);
    head_ = 0;
  }

  std::vector<T> slots_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

/// Fixed-capacity single-producer/single-consumer ring — the wait-free
/// cross-LP channel transport of `sim::ParallelSimulator`.
///
/// Exactly one thread may push and exactly one thread may pop at any time
/// (the roles may migrate between threads across a synchronization point,
/// which is how the LP scheduler hands a channel from a worker to the
/// exchange step). Capacity is fixed at construction and rounded up to a
/// power of two; `try_push` reports a full ring instead of blocking, so
/// callers can spill to a side buffer they own.
template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity) {
    std::size_t rounded = kMinCapacity;
    while (rounded < capacity) rounded *= 2;
    slots_.resize(rounded);
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const noexcept { return slots_.size(); }

  /// Producer side. Returns false (leaving `value` untouched) on a full ring.
  bool try_push(T& value) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_acquire);
    if (tail - head == slots_.size()) return false;
    slots_[tail & (slots_.size() - 1)] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when the ring is empty.
  bool try_pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    if (head == tail) return false;
    out = std::move(slots_[head & (slots_.size() - 1)]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Number of queued values as seen by the consumer (exact only at a
  /// synchronization point; a racing producer may have pushed more).
  std::size_t size_approx() const noexcept {
    return tail_.load(std::memory_order_acquire) -
           head_.load(std::memory_order_acquire);
  }

  bool empty_approx() const noexcept { return size_approx() == 0; }

 private:
  static constexpr std::size_t kMinCapacity = 8;

  std::vector<T> slots_;
  /// Consumer cursor / producer cursor on separate cache lines so the two
  /// sides do not false-share.
  alignas(64) std::atomic<std::size_t> head_{0};
  alignas(64) std::atomic<std::size_t> tail_{0};
};

}  // namespace agentloc::util
