#pragma once

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace agentloc::util {

/// Power-of-two growable FIFO ring — the agent-inbox replacement for
/// `std::deque`.
///
/// libstdc++'s deque allocates a ~512-byte chunk the first time anything is
/// pushed and frees it again when the queue drains, so every burst of
/// messages into an idle inbox paid a malloc/free pair. The ring keeps one
/// contiguous power-of-two slab that only ever grows; emptied buffers retain
/// their capacity, which lets `AgentSystem` recycle them through a free list
/// across agent lifetimes instead of re-warming the allocator.
template <typename T>
class RingBuffer {
 public:
  RingBuffer() = default;

  RingBuffer(RingBuffer&& other) noexcept
      : slots_(std::move(other.slots_)),
        head_(other.head_),
        size_(other.size_) {
    other.slots_.clear();
    other.head_ = 0;
    other.size_ = 0;
  }

  RingBuffer& operator=(RingBuffer&& other) noexcept {
    if (this != &other) {
      slots_ = std::move(other.slots_);
      head_ = other.head_;
      size_ = other.size_;
      other.slots_.clear();
      other.head_ = 0;
      other.size_ = 0;
    }
    return *this;
  }

  RingBuffer(const RingBuffer&) = delete;
  RingBuffer& operator=(const RingBuffer&) = delete;

  bool empty() const noexcept { return size_ == 0; }
  std::size_t size() const noexcept { return size_; }
  std::size_t capacity() const noexcept { return slots_.size(); }

  void push_back(T value) {
    if (size_ == slots_.size()) grow();
    slots_[(head_ + size_) & mask()] = std::move(value);
    ++size_;
  }

  T& front() noexcept {
    assert(size_ > 0 && "front() on empty RingBuffer");
    return slots_[head_];
  }

  T pop_front() {
    assert(size_ > 0 && "pop_front() on empty RingBuffer");
    T out = std::move(slots_[head_]);
    head_ = (head_ + 1) & mask();
    --size_;
    return out;
  }

  /// Drop all queued values; capacity is retained for reuse.
  void clear() noexcept {
    for (std::size_t i = 0; i < size_; ++i) {
      slots_[(head_ + i) & mask()] = T{};
    }
    head_ = 0;
    size_ = 0;
  }

 private:
  static constexpr std::size_t kMinCapacity = 8;

  std::size_t mask() const noexcept { return slots_.size() - 1; }

  void grow() {
    const std::size_t next =
        slots_.empty() ? kMinCapacity : slots_.size() * 2;
    std::vector<T> grown(next);
    for (std::size_t i = 0; i < size_; ++i) {
      grown[i] = std::move(slots_[(head_ + i) & mask()]);
    }
    slots_ = std::move(grown);
    head_ = 0;
  }

  std::vector<T> slots_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace agentloc::util
