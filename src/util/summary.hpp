#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace agentloc::util {

/// Accumulates a sample set and reports the order statistics the experiment
/// harness prints (the paper reports "statistically normalized averages"; we
/// additionally expose percentiles for the extended analyses).
///
/// Samples are retained so exact percentiles can be computed; experiment
/// sample counts are in the low thousands, so memory is not a concern.
class Summary {
 public:
  void add(double value);

  /// Merge another summary's samples into this one.
  void merge(const Summary& other);

  std::size_t count() const noexcept { return samples_.size(); }
  bool empty() const noexcept { return samples_.empty(); }

  double sum() const noexcept { return sum_; }
  double mean() const noexcept;
  double min() const noexcept;
  double max() const noexcept;

  /// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
  double stddev() const noexcept;

  /// Exact percentile by nearest-rank on the sorted samples; `p` in [0, 100].
  double percentile(double p) const;
  double median() const { return percentile(50.0); }

  /// Mean after discarding the `fraction` smallest and largest samples — the
  /// "statistically normalized average" used when reporting location times.
  double trimmed_mean(double fraction) const;

  /// "n=… mean=… p50=… p95=… max=…" one-liner for logs.
  std::string str() const;

  const std::vector<double>& samples() const noexcept { return samples_; }

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
  double sum_ = 0.0;
};

/// Fixed-width histogram over [lo, hi) with overflow/underflow buckets.
/// Used by tests and benches to describe load distributions across IAgents.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double value);

  std::size_t bucket_count() const noexcept { return counts_.size(); }
  std::size_t bucket(std::size_t i) const { return counts_.at(i); }
  std::size_t underflow() const noexcept { return underflow_; }
  std::size_t overflow() const noexcept { return overflow_; }
  std::size_t total() const noexcept { return total_; }

  /// Lower edge of bucket `i`.
  double bucket_lo(std::size_t i) const noexcept;

  /// Multi-line ASCII rendering (for example programs).
  std::string render(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace agentloc::util
