#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace agentloc::util {

/// Fixed-size worker pool for replication-level parallelism.
///
/// The simulator itself stays strictly single-threaded; the pool exists one
/// level up, where an experiment sweep runs many independent replications
/// (each owning its private `Simulator`/`Network`/`AgentSystem`). Tasks are
/// plain closures drained FIFO by `threads` workers.
class ThreadPool {
 public:
  using Task = std::function<void()>;

  /// Spawns `threads` workers (at least 1).
  explicit ThreadPool(std::size_t threads);

  /// Drains remaining tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task. Tasks must not throw; wrap fallible work in try/catch
  /// (see `parallel_for` for the canonical pattern).
  void submit(Task task);

  /// Block until every submitted task has finished executing.
  void wait_idle();

  /// `std::thread::hardware_concurrency()`, or 1 when that reports 0.
  static std::size_t default_threads() noexcept;

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<Task> queue_;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

/// Run `body(0) … body(count-1)` across up to `threads` workers and return
/// once all calls finished. With `threads <= 1` (or fewer than two items) the
/// calls run inline on the caller's thread — the sequential and parallel
/// paths execute the exact same bodies, just on different threads. The first
/// exception thrown by any body is rethrown on the caller after all indices
/// complete.
void parallel_for(std::size_t count, std::size_t threads,
                  const std::function<void(std::size_t)>& body);

}  // namespace agentloc::util
