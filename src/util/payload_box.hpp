#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace agentloc::util {

/// Copyable type-erased value box with small-buffer optimization — the
/// message-payload counterpart of `util::InlineFunction`.
///
/// `std::any` heap-allocates every payload larger than ~8 bytes, which made
/// each platform message carry at least one malloc/free pair just for its
/// body. This box stores values up to `Capacity` bytes inline (the fixed-size
/// structs of `core/protocol.hpp` all fit); only oversized control-plane
/// payloads fall back to the heap. Type recovery is by vtable identity
/// instead of RTTI: each decayed type maps to exactly one statically-emitted
/// vtable, so `get_if<T>()` is a single pointer compare.
template <std::size_t Capacity = 48>
class BasicPayloadBox {
 public:
  static constexpr std::size_t kCapacity = Capacity;

  BasicPayloadBox() noexcept = default;

  /// Wrap any copy-constructible value. Stored inline when it fits (size,
  /// alignment, and a noexcept move constructor — relocation must not
  /// throw); heap otherwise.
  template <typename T, typename D = std::decay_t<T>,
            typename = std::enable_if_t<!std::is_same_v<D, BasicPayloadBox>>>
  BasicPayloadBox(T&& value) {  // NOLINT(runtime/explicit)
    static_assert(std::is_copy_constructible_v<D>,
                  "payloads must be copyable (messages may be duplicated)");
    if constexpr (stored_inline<D>()) {
      ::new (static_cast<void*>(storage_)) D(std::forward<T>(value));
      vtable_ = &kInlineVTable<D>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<T>(value)));
      vtable_ = &kHeapVTable<D>;
    }
  }

  BasicPayloadBox(const BasicPayloadBox& other) { copy_from(other); }

  BasicPayloadBox(BasicPayloadBox&& other) noexcept { take(other); }

  BasicPayloadBox& operator=(const BasicPayloadBox& other) {
    if (this != &other) {
      reset();
      copy_from(other);
    }
    return *this;
  }

  BasicPayloadBox& operator=(BasicPayloadBox&& other) noexcept {
    if (this != &other) {
      reset();
      take(other);
    }
    return *this;
  }

  ~BasicPayloadBox() { reset(); }

  /// Destroy the held value and become empty.
  void reset() noexcept {
    if (vtable_ != nullptr) {
      if (!vtable_->trivial) vtable_->destroy(storage_);
      vtable_ = nullptr;
    }
  }

  bool has_value() const noexcept { return vtable_ != nullptr; }
  explicit operator bool() const noexcept { return has_value(); }

  /// Whether the box currently holds a value of (decayed) type `T`.
  template <typename T>
  bool holds() const noexcept {
    return vtable_ == vtable_for<std::decay_t<T>>();
  }

  /// Typed view of the held value; nullptr on type mismatch or empty box.
  template <typename T>
  const T* get_if() const noexcept {
    using D = std::decay_t<T>;
    if (vtable_ != vtable_for<D>()) return nullptr;
    const void* storage = storage_;
    if constexpr (stored_inline<D>()) {
      return std::launder(static_cast<const D*>(storage));
    } else {
      return *std::launder(static_cast<D* const*>(storage));
    }
  }

  template <typename T>
  T* get_if() noexcept {
    return const_cast<T*>(std::as_const(*this).template get_if<T>());
  }

  /// Whether a value of type `T` would be stored without heap allocation.
  template <typename T>
  static constexpr bool stored_inline() noexcept {
    return sizeof(T) <= Capacity && alignof(T) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<T>;
  }

 private:
  struct VTable {
    // Copy-construct the value held in `src` storage into `dst` storage;
    // may throw (the value's copy constructor propagates).
    void (*copy)(void* dst, const void* src);
    // Move the value from `src` storage into `dst` storage and destroy the
    // source; never throws (inline storage requires a noexcept move).
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
    // Trivially-copyable inline values move/copy by memcpy and need no
    // destructor call — every fixed-size protocol struct takes this path.
    bool trivial;
  };

  template <typename T>
  struct InlineOps {
    static void copy(void* dst, const void* src) {
      ::new (dst) T(*static_cast<const T*>(src));
    }
    static void relocate(void* dst, void* src) noexcept {
      T* from = static_cast<T*>(src);
      ::new (dst) T(std::move(*from));
      from->~T();
    }
    static void destroy(void* storage) noexcept {
      static_cast<T*>(storage)->~T();
    }
  };

  template <typename T>
  struct HeapOps {
    static T*& slot(void* storage) noexcept {
      return *static_cast<T**>(storage);
    }
    static void copy(void* dst, const void* src) {
      ::new (dst) T*(new T(**static_cast<T* const*>(src)));
    }
    static void relocate(void* dst, void* src) noexcept {
      ::new (dst) T*(slot(src));  // steal the pointer; nothing to destroy
    }
    static void destroy(void* storage) noexcept { delete slot(storage); }
  };

  template <typename T>
  static constexpr VTable kInlineVTable{
      &InlineOps<T>::copy, &InlineOps<T>::relocate, &InlineOps<T>::destroy,
      std::is_trivially_copyable_v<T> && std::is_trivially_destructible_v<T>};
  template <typename T>
  static constexpr VTable kHeapVTable{&HeapOps<T>::copy,
                                      &HeapOps<T>::relocate,
                                      &HeapOps<T>::destroy, false};

  /// The one vtable a (decayed) type erases through — its identity tag.
  template <typename D>
  static const VTable* vtable_for() noexcept {
    if constexpr (stored_inline<D>()) {
      return &kInlineVTable<D>;
    } else {
      return &kHeapVTable<D>;
    }
  }

  void copy_from(const BasicPayloadBox& other) {
    if (other.vtable_ == nullptr) return;
    if (other.vtable_->trivial) {
      std::memcpy(storage_, other.storage_, Capacity);
    } else {
      other.vtable_->copy(storage_, other.storage_);
    }
    vtable_ = other.vtable_;  // only after a successful copy
  }

  void take(BasicPayloadBox& other) noexcept {
    if (other.vtable_ != nullptr) {
      if (other.vtable_->trivial) {
        std::memcpy(storage_, other.storage_, Capacity);
      } else {
        other.vtable_->relocate(storage_, other.storage_);
      }
      vtable_ = other.vtable_;
      other.vtable_ = nullptr;
    }
  }

  static_assert(Capacity >= sizeof(void*),
                "capacity must at least hold the heap fallback pointer");
  alignas(std::max_align_t) unsigned char storage_[Capacity];
  const VTable* vtable_ = nullptr;
};

/// The platform's message-payload box: 48 inline bytes covers every
/// fixed-size struct in `core/protocol.hpp`.
using PayloadBox = BasicPayloadBox<48>;

}  // namespace agentloc::util
