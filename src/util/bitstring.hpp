#pragma once

#include <compare>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace agentloc::util {

/// A sequence of bits with value semantics.
///
/// `BitString` is the foundation of the hash mechanism: hash-tree edge
/// *labels*, leaf *hyper-labels*, and the binary representation of agent ids
/// are all bit strings. Bits are indexed from 0 (most significant /
/// left-most), matching the paper's "prefix of the binary representation"
/// orientation: bit 0 of an agent id is the first bit consulted by the hash
/// tree.
///
/// The representation is a packed `std::vector<uint64_t>` (bit i lives in
/// word i/64 at bit position 63 - i%64), so prefix extraction, comparison,
/// and append are cheap for the short strings (tens of bits) this library
/// manipulates, while still supporting full 64-bit ids and longer test
/// inputs.
class BitString {
 public:
  /// The empty bit string.
  BitString() = default;

  /// A bit string of `count` copies of `bit`.
  BitString(std::size_t count, bool bit);

  /// Construct from explicit bits, most significant first: `{1,0,1}` is "101".
  BitString(std::initializer_list<bool> bits);

  /// Parse from text consisting of '0' and '1' characters only.
  /// Throws `std::invalid_argument` on any other character.
  static BitString parse(std::string_view text);

  /// The `width` most-significant bits of `value`, left-padded with zeros so
  /// that e.g. `from_uint(5, 8)` is "00000101" — the natural binary
  /// representation used when hashing an agent id.
  /// Throws `std::invalid_argument` if `width > 64`.
  static BitString from_uint(std::uint64_t value, std::size_t width);

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  /// Bit at position `i` (0 = left-most). Throws `std::out_of_range`.
  bool at(std::size_t i) const;

  /// Unchecked access; precondition `i < size()`.
  bool operator[](std::size_t i) const noexcept { return get_unchecked(i); }

  /// First bit. In a hash-tree label this is the *valid bit* — the only bit
  /// that participates in the agent→IAgent mapping. Throws on empty.
  bool front() const { return at(0); }

  /// Last bit. Throws on empty.
  bool back() const { return at(size_ - 1); }

  void clear() noexcept {
    words_.clear();
    size_ = 0;
  }

  /// Append a single bit.
  void push_back(bool bit);

  /// Remove the last bit. Throws `std::logic_error` on empty.
  void pop_back();

  /// Set bit `i` to `bit`. Throws `std::out_of_range`.
  void set(std::size_t i, bool bit);

  /// Append all of `other`'s bits (concatenation of labels into
  /// hyper-labels). Self-append is supported.
  void append(const BitString& other);

  /// The `count` left-most bits. Throws `std::out_of_range` if
  /// `count > size()`.
  BitString prefix(std::size_t count) const;

  /// Bits `[begin, begin+count)`. Throws `std::out_of_range` when the range
  /// does not fit.
  BitString substr(std::size_t begin, std::size_t count) const;

  /// Bits `[begin, size())`.
  BitString suffix_from(std::size_t begin) const;

  /// True when `*this` is a (not necessarily proper) prefix of `other`.
  bool is_prefix_of(const BitString& other) const noexcept;

  /// Length of the longest common prefix with `other`.
  std::size_t common_prefix_length(const BitString& other) const noexcept;

  /// Interpret the first min(size, 64) bits as an unsigned integer, most
  /// significant bit first. An empty string yields 0.
  std::uint64_t to_uint() const noexcept;

  /// "0"/"1" text, e.g. "0110". Empty string renders as "".
  std::string to_string() const;

  friend bool operator==(const BitString& a, const BitString& b) noexcept;

  /// Lexicographic order (shorter prefix sorts first).
  friend std::strong_ordering operator<=>(const BitString& a,
                                          const BitString& b) noexcept;

  /// Hash suitable for unordered containers.
  std::size_t hash() const noexcept;

 private:
  bool get_unchecked(std::size_t i) const noexcept {
    return (words_[i >> 6] >> (63 - (i & 63))) & 1u;
  }
  void set_unchecked(std::size_t i, bool bit) noexcept {
    const std::uint64_t mask = std::uint64_t{1} << (63 - (i & 63));
    if (bit) {
      words_[i >> 6] |= mask;
    } else {
      words_[i >> 6] &= ~mask;
    }
  }

  std::vector<std::uint64_t> words_;
  std::size_t size_ = 0;
};

std::ostream& operator<<(std::ostream& os, const BitString& bits);

struct BitStringHash {
  std::size_t operator()(const BitString& b) const noexcept { return b.hash(); }
};

}  // namespace agentloc::util
