#pragma once

#include <compare>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <string_view>

namespace agentloc::util {

/// A sequence of bits with value semantics.
///
/// `BitString` is the foundation of the hash mechanism: hash-tree edge
/// *labels*, leaf *hyper-labels*, and the binary representation of agent ids
/// are all bit strings. Bits are indexed from 0 (most significant /
/// left-most), matching the paper's "prefix of the binary representation"
/// orientation: bit 0 of an agent id is the first bit consulted by the hash
/// tree.
///
/// The representation is packed 64-bit words (bit i lives in word i/64 at
/// bit position 63 - i%64) with a small-buffer optimization: strings of up
/// to `kInlineBits` bits — every edge label, every 64-bit agent id, and all
/// but pathological hyper-labels — live inline in the object and never touch
/// the heap. All kernels (append, substr, prefix, comparison, prefix tests)
/// operate word-at-a-time.
///
/// Invariant: the unused low bits of the last word are always zero, so
/// equality and hashing can compare whole words.
class BitString {
 public:
  /// Bits held inline before the representation spills to the heap.
  static constexpr std::size_t kInlineWords = 2;
  static constexpr std::size_t kInlineBits = kInlineWords * 64;

  /// The empty bit string.
  BitString() noexcept : size_(0), cap_words_(kInlineWords) {}

  /// A bit string of `count` copies of `bit`.
  BitString(std::size_t count, bool bit);

  /// Construct from explicit bits, most significant first: `{1,0,1}` is "101".
  BitString(std::initializer_list<bool> bits);

  BitString(const BitString& other);
  BitString(BitString&& other) noexcept;
  BitString& operator=(const BitString& other);
  BitString& operator=(BitString&& other) noexcept;
  ~BitString() { release(); }

  /// Parse from text consisting of '0' and '1' characters only.
  /// Throws `std::invalid_argument` on any other character.
  static BitString parse(std::string_view text);

  /// The `width` most-significant bits of `value`, left-padded with zeros so
  /// that e.g. `from_uint(5, 8)` is "00000101" — the natural binary
  /// representation used when hashing an agent id.
  /// Throws `std::invalid_argument` if `width > 64`.
  static BitString from_uint(std::uint64_t value, std::size_t width);

  /// Rebuild from MSB-first packed bytes (the wire format of
  /// `ByteWriter::write_bits`): bit i of the string is bit 7 - i%8 of byte
  /// i/8. Trailing bits of the last byte beyond `bit_count` are ignored.
  static BitString from_packed_msb(const std::uint8_t* data,
                                   std::size_t bit_count);

  /// Write the string as MSB-first packed bytes into `out`, which must have
  /// room for `(size() + 7) / 8` bytes.
  void pack_msb(std::uint8_t* out) const noexcept;

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  /// Number of 64-bit words backing the string.
  std::size_t word_count() const noexcept { return (size_ + 63) >> 6; }

  /// Read-only view of the packed words (unused low bits of the last word
  /// are zero). Valid for `word_count()` words.
  const std::uint64_t* words() const noexcept { return words_ptr(); }

  /// Bit at position `i` (0 = left-most). Throws `std::out_of_range`.
  bool at(std::size_t i) const;

  /// Unchecked access; precondition `i < size()`.
  bool operator[](std::size_t i) const noexcept { return get_unchecked(i); }

  /// First bit. In a hash-tree label this is the *valid bit* — the only bit
  /// that participates in the agent→IAgent mapping. Throws on empty.
  bool front() const { return at(0); }

  /// Last bit. Throws on empty.
  bool back() const { return at(size_ - 1); }

  void clear() noexcept { size_ = 0; }

  /// Append a single bit.
  void push_back(bool bit);

  /// Remove the last bit. Throws `std::logic_error` on empty.
  void pop_back();

  /// Set bit `i` to `bit`. Throws `std::out_of_range`.
  void set(std::size_t i, bool bit);

  /// Append all of `other`'s bits (concatenation of labels into
  /// hyper-labels). Self-append is supported. Word-at-a-time: the source is
  /// shifted into place 64 bits per step.
  void append(const BitString& other);

  /// The `count` left-most bits. Throws `std::out_of_range` if
  /// `count > size()`.
  BitString prefix(std::size_t count) const;

  /// Bits `[begin, begin+count)`. Throws `std::out_of_range` when the range
  /// does not fit.
  BitString substr(std::size_t begin, std::size_t count) const;

  /// Bits `[begin, size())`.
  BitString suffix_from(std::size_t begin) const;

  /// True when `*this` is a (not necessarily proper) prefix of `other`.
  bool is_prefix_of(const BitString& other) const noexcept;

  /// Length of the longest common prefix with `other`.
  std::size_t common_prefix_length(const BitString& other) const noexcept;

  /// Interpret the first min(size, 64) bits as an unsigned integer, most
  /// significant bit first. An empty string yields 0.
  std::uint64_t to_uint() const noexcept;

  /// "0"/"1" text, e.g. "0110". Empty string renders as "".
  std::string to_string() const;

  friend bool operator==(const BitString& a, const BitString& b) noexcept;

  /// Lexicographic order (shorter prefix sorts first).
  friend std::strong_ordering operator<=>(const BitString& a,
                                          const BitString& b) noexcept;

  /// Hash suitable for unordered containers.
  std::size_t hash() const noexcept;

 private:
  bool is_inline() const noexcept { return cap_words_ <= kInlineWords; }
  std::uint64_t* words_ptr() noexcept { return is_inline() ? sbo_ : heap_; }
  const std::uint64_t* words_ptr() const noexcept {
    return is_inline() ? sbo_ : heap_;
  }

  bool get_unchecked(std::size_t i) const noexcept {
    return (words_ptr()[i >> 6] >> (63 - (i & 63))) & 1u;
  }
  void set_unchecked(std::size_t i, bool bit) noexcept {
    const std::uint64_t mask = std::uint64_t{1} << (63 - (i & 63));
    if (bit) {
      words_ptr()[i >> 6] |= mask;
    } else {
      words_ptr()[i >> 6] &= ~mask;
    }
  }

  /// Grow storage to hold at least `words` words, preserving content.
  void ensure_capacity(std::size_t words);

  /// Zero the unused low bits of the last word (no-op when word-aligned).
  void clear_tail() noexcept {
    if (size_ & 63) {
      words_ptr()[word_count() - 1] &= ~std::uint64_t{0} << (64 - (size_ & 63));
    }
  }

  void release() noexcept {
    if (!is_inline()) delete[] heap_;
  }

  std::size_t size_;       ///< bits
  std::size_t cap_words_;  ///< capacity; > kInlineWords means heap storage
  union {
    std::uint64_t sbo_[kInlineWords];
    std::uint64_t* heap_;
  };
};

std::ostream& operator<<(std::ostream& os, const BitString& bits);

struct BitStringHash {
  std::size_t operator()(const BitString& b) const noexcept { return b.hash(); }
};

}  // namespace agentloc::util
