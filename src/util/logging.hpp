#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace agentloc::util {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4 };

std::string_view to_string(LogLevel level) noexcept;

/// Minimal structured logger.
///
/// The library is single-threaded by design (the discrete-event simulator
/// owns the clock), so the logger favours simplicity: a process-wide level
/// threshold, an optional time source (wired to the simulator so log lines
/// carry *simulated* milliseconds), and a redirectable sink used by tests to
/// assert on emitted diagnostics.
class Logger {
 public:
  using Sink = std::function<void(LogLevel, std::string_view)>;
  using TimeSource = std::function<double()>;

  static Logger& instance();

  void set_level(LogLevel level) noexcept { level_ = level; }
  LogLevel level() const noexcept { return level_; }
  bool enabled(LogLevel level) const noexcept { return level >= level_; }

  /// Replace the sink; pass nullptr to restore the default (stderr).
  void set_sink(Sink sink);

  /// Install a simulated-time source; pass nullptr to drop the timestamp.
  void set_time_source(TimeSource source);

  void log(LogLevel level, std::string_view component, std::string_view text);

 private:
  Logger();

  LogLevel level_ = LogLevel::kWarn;
  Sink sink_;
  TimeSource time_;
};

namespace detail {
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { Logger::instance().log(level_, component_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string_view component_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace agentloc::util

/// Streaming log statement: `AGENTLOC_LOG(kInfo, "hagent") << "split " << id;`
/// The right-hand side is only evaluated when the level is enabled.
#define AGENTLOC_LOG(level, component)                                       \
  if (!::agentloc::util::Logger::instance().enabled(                        \
          ::agentloc::util::LogLevel::level)) {                             \
  } else                                                                     \
    ::agentloc::util::detail::LogLine(::agentloc::util::LogLevel::level,    \
                                      component)
