#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/bitstring.hpp"

namespace agentloc::util {

/// Encoded width of `write_varint(value)` in bytes, without writing it —
/// lets size-based decisions (delta vs. snapshot) run before any encoding.
constexpr std::size_t varint_size(std::uint64_t value) noexcept {
  std::size_t bytes = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++bytes;
  }
  return bytes;
}

/// Append-only binary writer with varint encoding.
///
/// The platform charges migration and messaging latency per serialized byte,
/// and the HAgent ships hash-tree snapshots to LHAgents; both use this pair
/// of classes so the "bytes on the wire" the latency model sees are the bytes
/// an actual implementation would send.
class ByteWriter {
 public:
  ByteWriter() = default;

  /// Adopt `storage` and append after its existing content. This is the
  /// zero-copy hook of the frame codec (DESIGN.md §17): a pooled buffer is
  /// moved in, payload bytes are encoded straight into it, and `take()`
  /// moves it back out for the wire — no intermediate vector, no memcpy.
  explicit ByteWriter(std::vector<std::uint8_t> storage)
      : bytes_(std::move(storage)) {}

  void write_u8(std::uint8_t value);
  void write_u32(std::uint32_t value);
  void write_u64(std::uint64_t value);

  /// LEB128 variable-length unsigned integer.
  void write_varint(std::uint64_t value);

  /// Append a 4-byte *padded* varint: LEB128 with forced continuation bits,
  /// always exactly 4 bytes, decoding to the same value as the canonical
  /// form. Frame headers reserve one of these as a length slot before the
  /// payload is encoded and patch it afterwards (`patch_varint4`) — a
  /// single-pass, zero-copy alternative to encode-then-prepend. Values must
  /// fit in 28 bits.
  void write_varint4(std::uint32_t value);

  /// Overwrite the padded varint previously written at `offset` (bounds-
  /// and width-checked). Throws `std::out_of_range` / `std::length_error`
  /// on misuse.
  void patch_varint4(std::size_t offset, std::uint32_t value);

  void write_bool(bool value) { write_u8(value ? 1 : 0); }
  void write_double(double value);
  void write_string(std::string_view text);
  void write_bits(const BitString& bits);
  void write_bytes(const std::uint8_t* data, std::size_t size);

  /// Pre-grow the underlying buffer for a payload of known rough size.
  void reserve(std::size_t bytes) { bytes_.reserve(bytes_.size() + bytes); }

  const std::vector<std::uint8_t>& bytes() const noexcept { return bytes_; }
  std::size_t size() const noexcept { return bytes_.size(); }

  std::vector<std::uint8_t> take() && { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Sequential reader over bytes produced by `ByteWriter`.
/// All methods throw `std::out_of_range` on truncated input and
/// `std::invalid_argument` on malformed varints, so corrupt snapshots fail
/// loudly instead of yielding a garbled hash tree.
class ByteReader {
 public:
  explicit ByteReader(const std::vector<std::uint8_t>& bytes)
      : data_(bytes.data()), size_(bytes.size()) {}
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint8_t read_u8();
  std::uint32_t read_u32();
  std::uint64_t read_u64();
  std::uint64_t read_varint();
  bool read_bool() { return read_u8() != 0; }
  double read_double();
  std::string read_string();
  BitString read_bits();

  std::size_t remaining() const noexcept { return size_ - pos_; }
  bool exhausted() const noexcept { return pos_ == size_; }

 private:
  void require(std::size_t count) const;

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace agentloc::util
