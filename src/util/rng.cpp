#include "util/rng.hpp"

#include <cmath>

namespace agentloc::util {

std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  // Expand the seed through SplitMix64 as the xoshiro authors recommend;
  // guards against the all-zero state.
  std::uint64_t s = seed;
  for (auto& word : state_) {
    s = mix64(s);
    word = s;
  }
  state_[0] |= 1;
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  // Lemire-style rejection to remove modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return span == 0 ? static_cast<std::int64_t>(next())  // full 64-bit range
                   : lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::uniform() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

double Rng::exponential(double mean) noexcept {
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

bool Rng::chance(double probability) noexcept {
  if (probability <= 0.0) return false;
  if (probability >= 1.0) return true;
  return uniform() < probability;
}

Rng Rng::fork() noexcept { return Rng(next()); }

std::size_t Rng::zipf(std::size_t n, double s) noexcept {
  if (n == 0) return 0;
  if (s <= 0.0) return static_cast<std::size_t>(next_below(n));
  // Inverse-CDF on the continuous approximation of the zeta distribution:
  // adequate for workload skew, where exactness of the tail is immaterial.
  const double u = uniform();
  double x = 1.0;
  if (std::abs(1.0 - s) < 1e-9) {
    x = std::exp(u * std::log(static_cast<double>(n)));
  } else {
    const double hn = std::pow(static_cast<double>(n), 1.0 - s);
    x = std::pow(u * (hn - 1.0) + 1.0, 1.0 / (1.0 - s));
  }
  auto rank = static_cast<std::size_t>(x) - 1;
  if (rank >= n) rank = n - 1;
  return rank;
}

}  // namespace agentloc::util
